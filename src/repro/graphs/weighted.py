"""Weighted graphs (extension beyond the paper's unweighted setting).

The paper states its theorems for unweighted graphs, but its motivating
application — road networks with travel times — is weighted, and Fact 1
is explicitly proved for weighted graphs ("If G is unweighted and
integral r >= 1, W(r) is even (r-1)-dominating" — the weighted statement
is the r-dominating one).  This module provides the weighted substrate;
:mod:`repro.labeling.weighted` builds the corresponding scheme.

Edge weights are positive integers (quantize real travel times as
needed); all distances then stay integral, as the label codec expects.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.util.pqueue import IndexedMinHeap


class WeightedGraph:
    """Undirected graph with positive integer edge weights.

    Example
    -------
    >>> g = WeightedGraph(3)
    >>> g.add_edge(0, 1, 5)
    >>> g.add_edge(1, 2, 2)
    >>> g.neighbors(1)
    [(0, 5), (2, 2)]
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise GraphError(f"number of vertices must be >= 0, got {num_vertices}")
        self._adj: list[list[tuple[int, int]]] = [[] for _ in range(num_vertices)]
        self._num_edges = 0

    # -- construction ---------------------------------------------------------

    def add_edge(self, u: int, v: int, weight: int) -> None:
        """Insert the edge ``(u, v)`` with a positive integer weight."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self-loop at vertex {u}")
        if not isinstance(weight, int) or weight < 1:
            raise GraphError(f"weight must be a positive integer, got {weight!r}")
        if any(n == v for n, _ in self._adj[u]):
            raise GraphError(f"duplicate edge ({u}, {v})")
        self._adj[u].append((v, weight))
        self._adj[v].append((u, weight))
        self._num_edges += 1

    @classmethod
    def from_unweighted(cls, graph: Graph, weight: int = 1) -> "WeightedGraph":
        """Lift an unweighted graph with a uniform weight."""
        g = cls(graph.num_vertices)
        for u, v in graph.edges():
            g.add_edge(u, v, weight)
        return g

    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[tuple[int, int, int]]
    ) -> "WeightedGraph":
        """Build from ``(u, v, weight)`` triples."""
        g = cls(num_vertices)
        for u, v, w in edges:
            g.add_edge(u, v, w)
        return g

    # -- inspection -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._num_edges

    def vertices(self) -> range:
        """All vertex ids."""
        return range(len(self._adj))

    def neighbors(self, u: int) -> list[tuple[int, int]]:
        """``[(neighbor, weight), …]`` (callers must not mutate)."""
        self._check_vertex(u)
        return self._adj[u]

    def edges(self) -> Iterable[tuple[int, int, int]]:
        """Each edge once, as ``(min, max, weight)``."""
        for u, nbrs in enumerate(self._adj):
            for v, w in nbrs:
                if u < v:
                    yield (u, v, w)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` is present."""
        self._check_vertex(u)
        self._check_vertex(v)
        return any(n == v for n, _ in self._adj[u])

    # -- ports (compact-routing interface model) ---------------------------

    def port_to(self, u: int, v: int) -> int:
        """Index of ``v`` in ``u``'s adjacency list (the out-port)."""
        self._check_vertex(u)
        for port, (neighbor, _) in enumerate(self._adj[u]):
            if neighbor == v:
                return port
        raise GraphError(f"no edge ({u}, {v})")

    def neighbor_by_port(self, u: int, port: int) -> int:
        """The neighbor reached from ``u`` through out-port ``port``."""
        self._check_vertex(u)
        if not 0 <= port < len(self._adj[u]):
            raise GraphError(f"vertex {u} has no port {port}")
        return self._adj[u][port][0]

    def edge_weight(self, u: int, v: int) -> int:
        """Weight of the edge ``(u, v)``."""
        self._check_vertex(u)
        for neighbor, weight in self._adj[u]:
            if neighbor == v:
                return weight
        raise GraphError(f"no edge ({u}, {v})")

    def max_weight(self) -> int:
        """The largest edge weight (1 for edgeless graphs)."""
        return max((w for _, _, w in self.edges()), default=1)

    def distance_upper_bound(self) -> int:
        """A crude upper bound on any finite distance: ``n · max_weight``."""
        return max(1, (self.num_vertices - 1)) * self.max_weight()

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self.num_vertices}, m={self.num_edges})"

    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < len(self._adj):
            raise GraphError(f"vertex {u} out of range [0, {len(self._adj)})")


def weighted_distances(
    graph: WeightedGraph, source: int, radius: int | None = None
) -> dict[int, int]:
    """Dijkstra distances from ``source``, optionally truncated at ``radius``.

    The weighted analogue of :func:`repro.graphs.traversal.bfs_distances`.
    """
    dist: dict[int, int] = {}
    heap = IndexedMinHeap()
    heap.push(source, 0)
    while heap:
        u, du = heap.pop()
        dist[u] = int(du)
        for v, weight in graph.neighbors(u):
            if v in dist:
                continue
            dv = du + weight
            if radius is not None and dv > radius:
                continue
            heap.push_or_decrease(v, dv)
    return dist


def weighted_distances_avoiding(
    graph: WeightedGraph,
    source: int,
    forbidden_vertices: Iterable[int] = (),
    forbidden_edges: Iterable[tuple[int, int]] = (),
) -> dict[int, int]:
    """Dijkstra on ``G \\ F`` without materializing the subgraph."""
    gone_v = set(forbidden_vertices)
    gone_e = {(min(a, b), max(a, b)) for a, b in forbidden_edges}
    if source in gone_v:
        return {}
    dist: dict[int, int] = {}
    heap = IndexedMinHeap()
    heap.push(source, 0)
    while heap:
        u, du = heap.pop()
        dist[u] = int(du)
        for v, weight in graph.neighbors(u):
            if v in dist or v in gone_v:
                continue
            if gone_e and (min(u, v), max(u, v)) in gone_e:
                continue
            heap.push_or_decrease(v, du + weight)
    return dist


def weighted_first_hops(
    graph: WeightedGraph, source: int
) -> tuple[dict[int, int], dict[int, int]]:
    """Dijkstra distances plus, per reached vertex, the *first hop*: the
    neighbor of ``source`` on a weighted shortest path to it.

    The weighted analogue of :func:`repro.graphs.traversal.bfs_first_hops`;
    used by the weighted routing tables.
    """
    dist: dict[int, int] = {}
    first_hop: dict[int, int] = {}
    pending_hop: dict[int, int] = {}
    heap = IndexedMinHeap()
    heap.push(source, 0)
    while heap:
        u, du = heap.pop()
        dist[u] = int(du)
        if u != source:
            first_hop[u] = pending_hop[u]
        for v, weight in graph.neighbors(u):
            if v in dist:
                continue
            if heap.push_or_decrease(v, du + weight):
                pending_hop[v] = v if u == source else pending_hop[u]
    return dist, first_hop


def multi_source_weighted_distances(
    graph: WeightedGraph, sources: set[int]
) -> dict[int, tuple[int, int]]:
    """For every reachable vertex, ``(nearest source, distance)``.

    Ties broken deterministically by pushing sources in increasing id.
    """
    result: dict[int, tuple[int, int]] = {}
    heap = IndexedMinHeap()
    owner: dict[int, int] = {}
    for s in sorted(sources):
        heap.push(s, 0)
        owner[s] = s
    while heap:
        u, du = heap.pop()
        result[u] = (owner[u], int(du))
        for v, weight in graph.neighbors(u):
            if v in result:
                continue
            if heap.push_or_decrease(v, du + weight):
                owner[v] = owner[u]
    return result


def weighted_eccentricity(graph: WeightedGraph, source: int) -> int:
    """Largest Dijkstra distance from ``source`` within its component."""
    return max(weighted_distances(graph, source).values(), default=0)


def log2_ceil(value: int) -> int:
    """``⌈log₂(value)⌉`` for positive integers (0 for value 1)."""
    if value < 1:
        raise GraphError(f"log2_ceil needs a positive value, got {value}")
    return max(0, math.ceil(math.log2(value)))
