"""Graph generators used by tests, examples and the experiment harness.

Three groups:

* **bounded-doubling families** the scheme is designed for — paths,
  cycles, trees, ``d``-dimensional grids and tori, random geometric
  graphs, and "road-like" perturbed grids mimicking the road networks the
  paper's applications section motivates;
* **lower-bound constructions of Section 3** — the king-move grid
  ``G_{p,d}`` (Chebyshev adjacency) and its 2-spanner ``H_{p,d}``,
  plus samplers for the family ``F_{n,α}`` of graphs between them;
* **stress cases** — complete graphs and hypercubes, whose doubling
  dimension grows with ``n`` (the scheme stays correct, only the bounds
  degrade).
"""

from __future__ import annotations

import itertools
import math

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.util.rng import RngLike, make_rng


# ---------------------------------------------------------------------------
# elementary families
# ---------------------------------------------------------------------------

def path_graph(n: int) -> Graph:
    """The path ``P_n`` (doubling dimension 1)."""
    g = Graph(n)
    for u in range(n - 1):
        g.add_edge(u, u + 1)
    return g


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n`` (doubling dimension 1); requires ``n >= 3``."""
    if n < 3:
        raise GraphError(f"cycle needs n >= 3, got {n}")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def star_graph(n_leaves: int) -> Graph:
    """A star with center 0 and ``n_leaves`` leaves."""
    g = Graph(n_leaves + 1)
    for leaf in range(1, n_leaves + 1):
        g.add_edge(0, leaf)
    return g


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n`` (a stress case: α = Θ(log n) is irrelevant,
    its diameter is 1 so the hierarchy collapses)."""
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    return g


def balanced_tree(branching: int, height: int) -> Graph:
    """A complete ``branching``-ary tree of the given height (root = 0)."""
    if branching < 1 or height < 0:
        raise GraphError("branching >= 1 and height >= 0 required")
    num_vertices = 1
    level_size = 1
    for _ in range(height):
        level_size *= branching
        num_vertices += level_size
    g = Graph(num_vertices)
    next_id = 1
    frontier = [0]
    for _ in range(height):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                g.add_edge(parent, next_id)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return g


def random_tree(n: int, seed: RngLike = None) -> Graph:
    """A uniformly random labeled tree via a random Prüfer-like attachment.

    Each vertex ``v >= 1`` attaches to a uniformly random earlier vertex,
    which yields a random recursive tree (not uniform over all labeled
    trees, but well-spread and cheap; adequate for workloads).
    """
    rng = make_rng(seed)
    g = Graph(n)
    for v in range(1, n):
        g.add_edge(v, rng.randrange(v))
    return g


def caterpillar(spine_length: int, legs_per_vertex: int) -> Graph:
    """A caterpillar tree: a path spine with pendant legs (α close to 1)."""
    n = spine_length * (1 + legs_per_vertex)
    g = Graph(n)
    for u in range(spine_length - 1):
        g.add_edge(u, u + 1)
    next_id = spine_length
    for u in range(spine_length):
        for _ in range(legs_per_vertex):
            g.add_edge(u, next_id)
            next_id += 1
    return g


# ---------------------------------------------------------------------------
# grids
# ---------------------------------------------------------------------------

def grid_index(coords: tuple[int, ...], dims: tuple[int, ...]) -> int:
    """Row-major index of a coordinate tuple inside a grid of shape ``dims``."""
    index = 0
    for coordinate, size in zip(coords, dims):
        if not 0 <= coordinate < size:
            raise GraphError(f"coordinate {coords} outside grid {dims}")
        index = index * size + coordinate
    return index


def grid_coords(index: int, dims: tuple[int, ...]) -> tuple[int, ...]:
    """Inverse of :func:`grid_index`."""
    coords = []
    for size in reversed(dims):
        coords.append(index % size)
        index //= size
    return tuple(reversed(coords))


def grid_graph(*dims: int) -> Graph:
    """Axis-aligned grid of shape ``dims`` (doubling dimension ≈ len(dims)).

    ``grid_graph(w, h)`` is the standard 2-d grid; any dimension works.
    """
    if not dims or any(size < 1 for size in dims):
        raise GraphError(f"invalid grid shape {dims}")
    n = math.prod(dims)
    g = Graph(n)
    for coords in itertools.product(*(range(size) for size in dims)):
        u = grid_index(coords, dims)
        for axis, size in enumerate(dims):
            if coords[axis] + 1 < size:
                nxt = list(coords)
                nxt[axis] += 1
                g.add_edge(u, grid_index(tuple(nxt), dims))
    return g


def torus_graph(*dims: int) -> Graph:
    """Grid with wraparound in every axis; every axis needs length >= 3."""
    if not dims or any(size < 3 for size in dims):
        raise GraphError(f"torus needs every axis >= 3, got {dims}")
    n = math.prod(dims)
    g = Graph(n)
    for coords in itertools.product(*(range(size) for size in dims)):
        u = grid_index(coords, dims)
        for axis, size in enumerate(dims):
            nxt = list(coords)
            nxt[axis] = (coords[axis] + 1) % size
            v = grid_index(tuple(nxt), dims)
            if not g.has_edge(u, v):
                g.add_edge(u, v)
    return g


# ---------------------------------------------------------------------------
# geometric / road-like graphs (the paper's motivating application domain)
# ---------------------------------------------------------------------------

def random_geometric_graph(
    n: int, radius: float, seed: RngLike = None
) -> tuple[Graph, list[tuple[float, float]]]:
    """Random geometric graph in the unit square (doubling dimension ≈ 2).

    Returns ``(graph, positions)``.  Uses a cell grid so construction is
    near-linear.  The graph may be disconnected for small radii; callers
    that need connectivity can retry or take the largest component.
    """
    rng = make_rng(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    g = Graph(n)
    cell = max(radius, 1e-9)
    buckets: dict[tuple[int, int], list[int]] = {}
    for index, (x, y) in enumerate(points):
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(index)
    r2 = radius * radius
    for (cx, cy), members in buckets.items():
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                others = buckets.get((cx + dx, cy + dy))
                if not others:
                    continue
                for u in members:
                    ux, uy = points[u]
                    for v in others:
                        if v <= u:
                            continue
                        vx, vy = points[v]
                        if (ux - vx) ** 2 + (uy - vy) ** 2 <= r2:
                            g.add_edge(u, v)
    return g, points


def road_like_graph(
    width: int,
    height: int,
    removal_fraction: float = 0.1,
    diagonal_fraction: float = 0.05,
    seed: RngLike = None,
) -> Graph:
    """A synthetic road network: a 2-d grid with random street removals and
    occasional diagonal shortcuts, kept connected.

    Stands in for the real road networks of the paper's applications
    section (low highway dimension implies low doubling dimension); the
    perturbations break grid symmetry so shortest paths are non-trivial.
    """
    if not 0 <= removal_fraction < 1:
        raise GraphError("removal_fraction must be in [0, 1)")
    rng = make_rng(seed)
    dims = (width, height)
    g = grid_graph(width, height)
    # random diagonals first (they only help connectivity)
    for x in range(width - 1):
        for y in range(height - 1):
            if rng.random() < diagonal_fraction:
                g.add_edge(grid_index((x, y), dims), grid_index((x + 1, y + 1), dims))
    # remove a fraction of edges, skipping removals that disconnect
    edges = list(g.edges())
    rng.shuffle(edges)
    target_removals = int(removal_fraction * len(edges))
    removed: list[tuple[int, int]] = []
    from repro.graphs.components import is_connected  # local import: avoid cycle

    for edge in edges:
        if len(removed) >= target_removals:
            break
        candidate = g.subgraph_without(removed_edges=removed + [edge])
        if is_connected(candidate):
            removed.append(edge)
    return g.subgraph_without(removed_edges=removed)


def cylinder_graph(length: int, circumference: int) -> Graph:
    """A long thin cylinder: a ``length × circumference`` grid wrapped in
    the second axis (doubling dimension ≈ 2 locally, diameter ≈ length).

    The go-to family for *observing* the scheme's approximation: its
    diameter dwarfs the paper's smallest ball radius ``r_{c+1} ≈ 48``,
    so sketch paths must use high hierarchy levels and pay the
    net-snapping detours (experiment E13).
    """
    if length < 2 or circumference < 3:
        raise GraphError(
            f"cylinder needs length >= 2 and circumference >= 3, got "
            f"({length}, {circumference})"
        )
    dims = (length, circumference)
    g = Graph(length * circumference)
    for x in range(length):
        for y in range(circumference):
            u = grid_index((x, y), dims)
            if x + 1 < length:
                g.add_edge(u, grid_index((x + 1, y), dims))
            v = grid_index((x, (y + 1) % circumference), dims)
            if not g.has_edge(u, v):
                g.add_edge(u, v)
    return g


def grid_with_obstacles(
    width: int,
    height: int,
    obstacles: list[tuple[int, int, int, int]],
) -> Graph:
    """A 2-d grid with rectangular holes ``(x0, y0, x1, y1)`` (inclusive).

    Obstacle vertices remain in the id space but are isolated, as in
    :meth:`Graph.subgraph_without`.  Holes force detours, so shortest
    paths are far from unique — useful for stressing the decoder's
    choice of net-points.
    """
    dims = (width, height)
    removed = set()
    for x0, y0, x1, y1 in obstacles:
        if not (0 <= x0 <= x1 < width and 0 <= y0 <= y1 < height):
            raise GraphError(f"obstacle ({x0},{y0},{x1},{y1}) outside grid")
        for x in range(x0, x1 + 1):
            for y in range(y0, y1 + 1):
                removed.add(grid_index((x, y), dims))
    return grid_graph(width, height).subgraph_without(removed_vertices=removed)


# ---------------------------------------------------------------------------
# Section 3 lower-bound constructions
# ---------------------------------------------------------------------------

def king_grid(p: int, d: int) -> Graph:
    """The graph ``G_{p,d}`` of Section 3: vertices ``{0..p-1}^d``, edges
    between tuples at Chebyshev distance exactly 1 (``max_i |x_i-y_i| = 1``).

    Its doubling dimension is at most ``d``; for ``d = 2`` this is the
    king-move chessboard graph.
    """
    _check_grid_params(p, d)
    dims = (p,) * d
    n = p**d
    g = Graph(n)
    offsets = [
        delta
        for delta in itertools.product((-1, 0, 1), repeat=d)
        if any(delta)
    ]
    for coords in itertools.product(range(p), repeat=d):
        u = grid_index(coords, dims)
        for delta in offsets:
            nxt = tuple(c + o for c, o in zip(coords, delta))
            if any(not 0 <= c < p for c in nxt):
                continue
            v = grid_index(nxt, dims)
            if v > u:
                g.add_edge(u, v)
    return g


def half_king_grid(p: int, d: int) -> Graph:
    """The graph ``H_{p,d}`` of Section 3: same vertices as ``G_{p,d}``,
    edges where additionally ``sum_i |x_i - y_i| <= d/2``.

    ``H_{p,d}`` is a 2-spanner of ``G_{p,d}`` and has at most half its
    edges; the family ``F_{n,α}`` consists of all graphs between the two.
    Requires even ``d >= 2`` as in the paper.
    """
    _check_grid_params(p, d)
    if d % 2 != 0:
        raise GraphError(f"H_(p,d) requires even d, got {d}")
    dims = (p,) * d
    n = p**d
    g = Graph(n)
    offsets = [
        delta
        for delta in itertools.product((-1, 0, 1), repeat=d)
        if any(delta) and sum(abs(o) for o in delta) <= d // 2
    ]
    for coords in itertools.product(range(p), repeat=d):
        u = grid_index(coords, dims)
        for delta in offsets:
            nxt = tuple(c + o for c, o in zip(coords, delta))
            if any(not 0 <= c < p for c in nxt):
                continue
            v = grid_index(nxt, dims)
            if v > u:
                g.add_edge(u, v)
    return g


def sample_family_graph(p: int, d: int, seed: RngLike = None) -> Graph:
    """A uniform sample from the family ``F_{n,α}`` (α = 2d) of Section 3:
    ``H_{p,d}`` plus an independent coin flip for every edge of
    ``G_{p,d} \\ H_{p,d}``."""
    rng = make_rng(seed)
    base = half_king_grid(p, d)
    g = king_grid(p, d)
    sampled = base.copy()
    base_edges = set(base.edges())
    for edge in g.edges():
        if edge not in base_edges and rng.random() < 0.5:
            sampled.add_edge(*edge)
    return sampled


def sierpinski_graph(depth: int) -> Graph:
    """The Sierpinski gasket graph of the given subdivision depth.

    A self-similar family with non-integer doubling dimension
    (``log₂ 3 ≈ 1.585``), sitting strictly between paths (α ≈ 1) and
    grids (α ≈ 2) — useful for probing the α-dependence of the scheme.
    ``depth = 0`` is a triangle; each level replaces every triangle by
    three corner copies.  The graph has ``3(3^depth + 1)/2`` vertices.
    """
    if depth < 0:
        raise GraphError(f"depth must be >= 0, got {depth}")
    side = 1 << depth
    ids: dict[tuple[int, int], int] = {}
    edges: set[tuple[int, int]] = set()

    def vertex(point: tuple[int, int]) -> int:
        if point not in ids:
            ids[point] = len(ids)
        return ids[point]

    def subdivide(a, b, c, size):
        if size == 1:
            u, v, w = vertex(a), vertex(b), vertex(c)
            for x, y in ((u, v), (u, w), (v, w)):
                edges.add((min(x, y), max(x, y)))
            return
        half = size // 2
        ab = ((a[0] + b[0]) // 2, (a[1] + b[1]) // 2)
        ac = ((a[0] + c[0]) // 2, (a[1] + c[1]) // 2)
        bc = ((b[0] + c[0]) // 2, (b[1] + c[1]) // 2)
        subdivide(a, ab, ac, half)
        subdivide(ab, b, bc, half)
        subdivide(ac, bc, c, half)

    subdivide((0, 0), (side, 0), (0, side), side)
    g = Graph(len(ids))
    g.add_edges(sorted(edges))
    return g


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-cube (a stress case: doubling dimension Θ(dimension))."""
    n = 1 << dimension
    g = Graph(n)
    for u in range(n):
        for bit in range(dimension):
            v = u ^ (1 << bit)
            if v > u:
                g.add_edge(u, v)
    return g


def _check_grid_params(p: int, d: int) -> None:
    if p < 2 or d < 1:
        raise GraphError(f"grid requires p >= 2 and d >= 1, got p={p}, d={d}")
