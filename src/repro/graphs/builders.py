"""Converters between :class:`repro.graphs.Graph` and other formats.

networkx is an optional dependency used only here (and in tests as an
independent cross-check); the core library never imports it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.exceptions import GraphError
from repro.graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - typing-only optional dependency
    import networkx


def from_edge_list(num_vertices: int, edges: Iterable[tuple[int, int]]) -> Graph:
    """Build a graph from ``(u, v)`` pairs, ignoring duplicate edges."""
    g = Graph(num_vertices)
    seen: set[tuple[int, int]] = set()
    for u, v in edges:
        key = (min(u, v), max(u, v))
        if u == v or key in seen:
            continue
        seen.add(key)
        g.add_edge(u, v)
    return g


def from_networkx(nx_graph) -> tuple[Graph, dict, list]:
    """Convert a networkx graph.

    Returns ``(graph, node_to_id, id_to_node)`` where the mappings
    translate between networkx node objects and our integer ids.
    """
    nodes = list(nx_graph.nodes())
    node_to_id = {node: index for index, node in enumerate(nodes)}
    g = Graph(len(nodes))
    for a, b in nx_graph.edges():
        if a == b:
            continue
        u, v = node_to_id[a], node_to_id[b]
        if not g.has_edge(u, v):
            g.add_edge(u, v)
    return g, node_to_id, nodes


def to_networkx(graph: Graph) -> "networkx.Graph":
    """Convert to an (undirected, unweighted) ``networkx.Graph``."""
    try:
        import networkx as nx
    except ImportError as exc:  # pragma: no cover - networkx is installed in dev
        raise GraphError("networkx is required for to_networkx") from exc
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.vertices())
    nx_graph.add_edges_from(graph.edges())
    return nx_graph
