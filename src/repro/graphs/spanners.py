"""Spanner utilities (used by the Section 3 lower-bound construction).

The proof of Theorem 3.1 rests on ``H_{p,d}`` being a 2-spanner of
``G_{p,d}``: any graph between them inherits doubling dimension
``≤ 2d``.  These helpers make the spanner relation checkable for
arbitrary graph pairs.
"""

from __future__ import annotations

import math

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances


def is_subgraph(graph: Graph, candidate: Graph) -> bool:
    """Whether ``candidate``'s edges are a subset of ``graph``'s (same ids)."""
    if candidate.num_vertices != graph.num_vertices:
        return False
    edges = set(graph.edges())
    return all(edge in edges for edge in candidate.edges())


def spanner_stretch(graph: Graph, candidate: Graph) -> float:
    """The stretch of ``candidate`` as a spanner of ``graph``:
    ``max over edges (u,v) of G of d_candidate(u, v)``.

    (For subgraph spanners, checking edges suffices: any path in ``G``
    dilates by at most the worst edge dilation.)  Returns ``math.inf``
    if some edge's endpoints are disconnected in the candidate.
    """
    if candidate.num_vertices != graph.num_vertices:
        raise GraphError("spanner must be on the same vertex set")
    worst = 1.0
    for u, v in graph.edges():
        # bounded search: stop as soon as v is found
        found = None
        radius = 1
        while found is None and radius <= candidate.num_vertices:
            found = bfs_distances(candidate, u, radius=radius).get(v)
            if found is None and len(
                bfs_distances(candidate, u, radius=radius)
            ) == len(bfs_distances(candidate, u, radius=radius + 1)):
                return math.inf
            radius *= 2
        if found is None:
            return math.inf
        worst = max(worst, float(found))
    return worst


def is_spanner(graph: Graph, candidate: Graph, stretch: float) -> bool:
    """Whether ``candidate`` is an ``s``-spanner of ``graph``:
    a subgraph in which any two ``graph``-adjacent vertices are at
    distance at most ``stretch``."""
    return is_subgraph(graph, candidate) and spanner_stretch(
        graph, candidate
    ) <= stretch
