"""Connected-component helpers."""

from __future__ import annotations

from collections import deque

from repro.graphs.graph import Graph


def connected_components(graph: Graph) -> list[list[int]]:
    """Connected components as sorted vertex lists, largest-first order
    is NOT guaranteed — components appear in order of their smallest vertex.
    """
    seen = [False] * graph.num_vertices
    components: list[list[int]] = []
    for start in graph.vertices():
        if seen[start]:
            continue
        seen[start] = True
        component = [start]
        frontier = deque([start])
        while frontier:
            u = frontier.popleft()
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    component.append(v)
                    frontier.append(v)
        component.sort()
        components.append(component)
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if graph.num_vertices == 0:
        return True
    return len(connected_components(graph)) == 1
