"""Shortest-path primitives: BFS variants and Dijkstra.

BFS is the workhorse of the whole reproduction — net construction, label
materialization and the exact baseline all reduce to (bounded) BFS on the
unweighted input graph.  Dijkstra is only needed on the *sketch graph*
``H`` assembled by the decoder, whose edges carry integer lengths.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Hashable, Iterable, Mapping

from repro.graphs.graph import Graph
from repro.util.pqueue import IndexedMinHeap

if TYPE_CHECKING:
    from repro.obs.trace import Span


def bfs_distances(
    graph: Graph, source: int, radius: int | None = None
) -> dict[int, int]:
    """Distances from ``source`` to every vertex within ``radius`` hops.

    ``radius=None`` explores the whole connected component.  The source
    itself is always included with distance 0.
    """
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        du = dist[u]
        if radius is not None and du >= radius:
            continue
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = du + 1
                frontier.append(v)
    return dist


def bfs_distances_avoiding(
    graph: Graph,
    source: int,
    forbidden_vertices: Iterable[int] = (),
    forbidden_edges: Iterable[tuple[int, int]] = (),
    radius: int | None = None,
) -> dict[int, int]:
    """BFS distances in ``G \\ F`` without materializing the subgraph.

    Used by the exact recompute baseline; a forbidden source yields an
    empty result.
    """
    gone_v = set(forbidden_vertices)
    gone_e: set[tuple[int, int]] = set()
    for a, b in forbidden_edges:
        gone_e.add((min(a, b), max(a, b)))
    if source in gone_v:
        return {}
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        du = dist[u]
        if radius is not None and du >= radius:
            continue
        for v in graph.neighbors(u):
            if v in dist or v in gone_v:
                continue
            if gone_e and (min(u, v), max(u, v)) in gone_e:
                continue
            dist[v] = du + 1
            frontier.append(v)
    return dist


def bfs_parents(
    graph: Graph, source: int, radius: int | None = None
) -> tuple[dict[int, int], dict[int, int]]:
    """BFS distances plus a shortest-path-tree parent map.

    Returns ``(dist, parent)``; the source has no parent entry.
    """
    dist = {source: 0}
    parent: dict[int, int] = {}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        du = dist[u]
        if radius is not None and du >= radius:
            continue
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = du + 1
                parent[v] = u
                frontier.append(v)
    return dist, parent


def bfs_first_hops(
    graph: Graph, source: int, radius: int | None = None
) -> tuple[dict[int, int], dict[int, int]]:
    """BFS distances plus, for every reached vertex ``x``, the *first hop*:
    the neighbor of ``source`` on a shortest path ``source -> x``.

    This is exactly what the routing scheme of Theorem 2.7 stores: from
    the first hop we derive the out-port on a shortest path toward ``x``.
    The source has no first-hop entry.
    """
    dist = {source: 0}
    first_hop: dict[int, int] = {}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        du = dist[u]
        if radius is not None and du >= radius:
            continue
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = du + 1
                first_hop[v] = v if u == source else first_hop[u]
                frontier.append(v)
    return dist, first_hop


def shortest_path(graph: Graph, source: int, target: int) -> list[int] | None:
    """One shortest ``source -> target`` path, or ``None`` if disconnected."""
    if source == target:
        return [source]
    dist, parent = bfs_parents(graph, source)
    if target not in dist:
        return None
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def eccentricity(graph: Graph, source: int) -> int:
    """Largest BFS distance from ``source`` within its component."""
    dist = bfs_distances(graph, source)
    return max(dist.values())


def dijkstra(
    adjacency: Mapping[Hashable, Iterable[tuple[Hashable, float]]],
    source: Hashable,
    target: Hashable | None = None,
) -> dict[Hashable, float]:
    """Dijkstra over an adjacency mapping ``u -> [(v, weight), ...]``.

    Works on arbitrary hashable vertex ids — the decoder's sketch graph
    mixes original vertex ids and net-points.  If ``target`` is given the
    search stops as soon as the target is settled.  Unreachable vertices
    are simply absent from the result.
    """
    dist: dict[Hashable, float] = {}
    heap = IndexedMinHeap()
    heap.push(source, 0)
    while heap:
        u, du = heap.pop()
        dist[u] = du
        if u == target:
            break
        for v, weight in adjacency.get(u, ()):
            if v in dist:
                continue
            if weight < 0:
                raise ValueError(f"negative edge weight {weight} on ({u}, {v})")
            heap.push_or_decrease(v, du + weight)
    return dist


def dijkstra_with_paths(
    adjacency: Mapping[Hashable, Iterable[tuple[Hashable, float]]],
    source: Hashable,
    target: Hashable,
    span: "Span | None" = None,
) -> tuple[float, list[Hashable]]:
    """Dijkstra returning ``(distance, path)`` to ``target``.

    Returns ``(math.inf, [])`` when the target is unreachable.  When a
    tracing ``span`` is supplied, the search's op counts (settled
    nodes, scanned edges, heap updates) are recorded on it — the
    numbers behind the decoder's query-cost envelope.
    """
    dist: dict[Hashable, float] = {}
    parent: dict[Hashable, Hashable] = {}
    heap = IndexedMinHeap()
    heap.push(source, 0)
    nodes_settled = 0
    edges_scanned = 0
    heap_updates = 1  # the initial push
    while heap:
        u, du = heap.pop()
        nodes_settled += 1
        dist[u] = du
        if u == target:
            break
        for v, weight in adjacency.get(u, ()):
            edges_scanned += 1
            if v in dist:
                continue
            if heap.push_or_decrease(v, du + weight):
                heap_updates += 1
                parent[v] = u
    if span is not None:
        span.add("nodes_settled", nodes_settled)
        span.add("edges_scanned", edges_scanned)
        span.add("heap_updates", heap_updates)
    if target not in dist:
        return math.inf, []
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return dist[target], path
