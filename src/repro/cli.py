"""Command-line interface.

Subcommands::

    python -m repro build  GRAPH_SPEC -e 1.0 -o labels.fsdl [--low-level unit]
    python -m repro query  labels.fsdl -s 0 -t 63 [--fail-vertex 5 ...]
    python -m repro info   labels.fsdl
    python -m repro fsck   labels.fsdl
    python -m repro verify GRAPH_SPEC -e 1.0
    python -m repro chaos  GRAPH_SPEC [--schedules 5] [--events 100] [--drop 0.2]
    python -m repro serve-chaos GRAPH_SPEC [--schedules 5] [--events 60] \
        [--shards 4] [--replication 2] [--no-hedging]
    python -m repro crash-battery [GRAPH_SPEC] [--seed 0] [--churn-rounds 3]
    python -m repro rollout [GRAPH_SPEC] [--remove A-B] [--seed 0]
    python -m repro rollout-battery [GRAPH_SPEC] [--seed 0] [--limit N]
    python -m repro experiment E1 [E5 ...] [--full]
    python -m repro lint [PATH ...] [--format text|json] [--select RPL001,...]
    python -m repro metrics [--schedules 20] [--events 60] [--seed 0] \
        [--format prom|json]
    python -m repro trace labels.fsdl -s 0 -t 63 [--fail-vertex 5 ...] \
        [--format text|json]
    python -m repro bench [--mode obs|kernel] [--queries 120] [--repeats 5] \
        [--min-speedup R] [--emit BENCH.json]
    python -m repro traffic [--seed 0] [--duration-ms 1000] \
        [--multiplier 4.0] [--no-cache] [--no-coalescing] \
        [--format prom|json]
    python -m repro scenario list
    python -m repro scenario validate [FILE ...]
    python -m repro scenario run FILE [--seed N] [--format text|json] \
        [--emit-plan PLAN.json]
    python -m repro scenario search GRAPH_SPEC [--objective stretch|degraded] \
        [--budget 3] [--seed 0] [--emit FILE.scenario]

``GRAPH_SPEC`` selects a generator: ``path:64``, ``cycle:32``,
``grid:8x8``, ``grid:4x4x4``, ``torus:6x6``, ``tree:50`` (optionally
``tree:50:seed``), ``road:10x10`` (optionally ``road:10x10:seed``),
``cylinder:300x6``, ``king:4x2``, ``halfking:4x2``, ``hypercube:5``,
``sierpinski:4``, ``geometric:100:0.2`` (optionally ``:seed``).
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Any

from repro.exceptions import ReproError
from repro.graphs.graph import Graph


def parse_graph_spec(spec: str) -> Graph:
    """Build a graph from a ``family:params`` specification string."""
    from repro.graphs import generators as gen

    parts = spec.split(":")
    family, args = parts[0].lower(), parts[1:]

    def dims(text: str) -> list[int]:
        return [int(piece) for piece in text.split("x")]

    try:
        if family == "path":
            return gen.path_graph(int(args[0]))
        if family == "cycle":
            return gen.cycle_graph(int(args[0]))
        if family == "grid":
            return gen.grid_graph(*dims(args[0]))
        if family == "torus":
            return gen.torus_graph(*dims(args[0]))
        if family == "tree":
            seed = int(args[1]) if len(args) > 1 else 0
            return gen.random_tree(int(args[0]), seed=seed)
        if family == "road":
            width, height = dims(args[0])
            seed = int(args[1]) if len(args) > 1 else 0
            return gen.road_like_graph(width, height, seed=seed)
        if family == "cylinder":
            length, circumference = dims(args[0])
            return gen.cylinder_graph(length, circumference)
        if family == "king":
            p, d = dims(args[0])
            return gen.king_grid(p, d)
        if family == "halfking":
            p, d = dims(args[0])
            return gen.half_king_grid(p, d)
        if family == "hypercube":
            return gen.hypercube_graph(int(args[0]))
        if family == "sierpinski":
            return gen.sierpinski_graph(int(args[0]))
        if family == "geometric":
            seed = int(args[2]) if len(args) > 2 else 0
            graph, _ = gen.random_geometric_graph(
                int(args[0]), float(args[1]), seed=seed
            )
            return graph
    except (IndexError, ValueError) as exc:
        raise SystemExit(f"bad graph spec {spec!r}: {exc}")
    raise SystemExit(f"unknown graph family {family!r}")


def _parse_edge(text: str) -> tuple[int, int]:
    try:
        a, b = text.split("-")
        return int(a), int(b)
    except ValueError:
        raise SystemExit(f"bad edge {text!r}; expected 'a-b'")


def cmd_build(args: argparse.Namespace) -> int:
    """``repro build``: construct labels and save a database."""
    from repro.labeling import ForbiddenSetLabeling, LabelingOptions
    from repro.oracle.persistence import save_labels

    graph = parse_graph_spec(args.graph)
    print(f"graph: {graph!r}")
    scheme = ForbiddenSetLabeling(
        graph,
        epsilon=args.epsilon,
        options=LabelingOptions(low_level=args.low_level),
    )
    print(
        f"scheme: eps={args.epsilon} c={scheme.params.c} "
        f"levels={list(scheme.params.levels())}"
    )
    size = save_labels(scheme, args.output, version=args.format_version)
    print(f"wrote {args.output}: {graph.num_vertices} labels, {size} bytes "
          f"(format v{args.format_version})")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """``repro query``: answer a forbidden-set query from a database."""
    from repro.oracle.persistence import LabelDatabase

    db = LabelDatabase.load(args.database)
    edge_faults = [_parse_edge(e) for e in args.fail_edge]
    result = db.query(
        args.source,
        args.target,
        vertex_faults=args.fail_vertex,
        edge_faults=edge_faults,
    )
    if math.isinf(result.distance):
        print(f"d({args.source}, {args.target} | F) = unreachable")
    else:
        print(f"d({args.source}, {args.target} | F) = {result.distance}")
        print(f"sketch path: {' -> '.join(map(str, result.path))}")
    print(
        f"sketch graph: {result.sketch_vertices} vertices, "
        f"{result.sketch_edges} edges"
    )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """``repro info``: print database header and size statistics."""
    from repro.oracle.persistence import LabelDatabase

    db = LabelDatabase.load(args.database)
    sizes = [len(db._table[v]) for v in range(db.num_vertices)]
    print(f"format:    v{db.version}")
    print(f"labels:    {db.num_vertices}")
    print(f"epsilon:   {db.epsilon}")
    print(f"c:         {db.c}")
    print(f"top level: {db.top_level}")
    print(f"storage:   {db.size_bits()} bits ({db.size_bits() // 8} bytes)")
    print(f"max label: {8 * max(sizes)} bits")
    print(f"avg label: {8 * sum(sizes) / len(sizes):.0f} bits")
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    """``repro fsck``: integrity-check a saved label database.

    Exit codes: 0 = clean, 1 = in-place corrupted record(s),
    2 = truncated tail (the file stops before a record does — the
    classic torn-write artifact of a crashed save).
    """
    from repro.exceptions import DatabaseTruncationError
    from repro.oracle.persistence import LabelDatabase

    try:
        db = LabelDatabase.load(args.database, strict=False)
    except DatabaseTruncationError as exc:
        print("integrity: TRUNCATED — the file ends before a record does")
        print(f"  {exc}")
        print("  likely cause: a crash mid-write; restore from the atomic "
              "save path or rebuild")
        return 2
    manifest_status = _fsck_manifest(args.database)
    bad = db.verify()
    print(f"format:    v{db.version}")
    print(f"labels:    {db.num_vertices}")
    if db.version < 2:
        print("warning:   v1 database has no checksums; only decode "
              "failures are detectable")
    if not bad:
        if manifest_status != 0:
            print("integrity: labels OK, but the rollout manifest is corrupt")
            return 1
        print("integrity: OK")
        return 0
    print(f"integrity: {len(bad)} in-place corrupt label(s): "
          f"{', '.join(map(str, bad[:20]))}"
          f"{' ...' if len(bad) > 20 else ''}")
    for vertex, reason in sorted(db.quarantined.items())[:20]:
        print(f"  vertex {vertex}: {reason}")
    return 1


def _fsck_manifest(database: str) -> int:
    """Report the rollout manifest next to ``database``, if one exists.

    A label database living inside a rollout root has a sibling
    ``MANIFEST`` naming the committed label-table generation; surfacing
    it here keeps ``fsck`` the one-stop integrity view.  Returns 0 when
    there is no manifest or it decodes cleanly, 1 when it is corrupt.
    """
    import os

    from repro.durability.fs import RealFS
    from repro.exceptions import StorageCorruptionError
    from repro.rollout.manifest import load_manifest, manifest_path

    root = os.path.dirname(database) or "."
    if not os.path.exists(manifest_path(root)):
        return 0
    try:
        manifest = load_manifest(RealFS(), root)
    except StorageCorruptionError as exc:
        print(f"manifest:  CORRUPT — {exc}")
        return 1
    entry = manifest.committed_entry()
    print(f"manifest:  generation {manifest.committed_version} committed "
          f"({entry.num_shards} shard(s))")
    for other in manifest.entries:
        if other.version != manifest.committed_version:
            print(f"           generation {other.version}: {other.state}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: run seeded churn schedules with invariant checks."""
    from repro.chaos import random_churn_plan, run_plan, standard_suite

    if args.graph is None:
        reports = standard_suite(
            num_schedules=args.schedules,
            num_events=args.events,
            seed=args.seed,
            epsilon=args.epsilon,
        )
    else:
        graph = parse_graph_spec(args.graph)
        reports = []
        for i in range(args.schedules):
            plan = random_churn_plan(
                graph,
                num_events=args.events,
                seed=args.seed + i,
                drop_probability=args.drop,
                name=f"schedule {i} on {graph!r} (loss={args.drop})",
            )
            reports.append(run_plan(graph, plan, epsilon=args.epsilon))
    violations = 0
    for report in reports:
        print(report.summary())
        for line in report.violations:
            print(f"  ! {line}")
        violations += len(report.violations)
    print(f"\n{len(reports)} schedule(s), {violations} invariant violation(s)")
    return 0 if violations == 0 else 1


def cmd_crash_battery(args: argparse.Namespace) -> int:
    """``repro crash-battery``: exhaustive kill-point durability check.

    Enumerates every filesystem kill-point a seeded write workload
    crosses, crashes at each one under every crash mode (torn write,
    partial flush, lost rename), recovers, and checks the durability
    invariant.  Exit code 0 only when every kill-point passes.
    """
    from repro.durability import CRASH_MODES, exhaustive_crash_battery

    graph = parse_graph_spec(args.graph)
    print(f"graph:        {graph!r}")
    print(f"crash modes:  {', '.join(CRASH_MODES)}")
    report = exhaustive_crash_battery(
        graph,
        epsilon=args.epsilon,
        seed=args.seed,
        churn_rounds=args.churn_rounds,
    )
    print(f"workload:     {report.workload_ops} logical ops over "
          f"{report.vertices} labels (seed {report.seed})")
    print(f"kill-points:  {report.fs_ops} filesystem ops × "
          f"{len(CRASH_MODES)} modes = {report.kill_points} crashes")
    print(f"recoveries:   {report.crashes_fired} "
          f"({report.torn_tails_truncated} torn WAL tails truncated, "
          f"{report.tmp_files_swept} orphaned tmp files swept)")
    print(f"probes:       {report.probe_queries} post-recovery queries "
          f"checked against BFS ground truth")
    if report.passed:
        print("durability:   OK — every kill-point recovered to a prefix "
              "of acknowledged writes")
        return 0
    print(f"durability:   {len(report.violations)} VIOLATION(S)")
    for line in report.violations[:30]:
        print(f"  ! {line}")
    if len(report.violations) > 30:
        print(f"  ... and {len(report.violations) - 30} more")
    return 1


def cmd_rollout(args: argparse.Namespace) -> int:
    """``repro rollout``: demo one incremental blue/green label rollout.

    Plans an incremental relabeling for a single edge removal (seeded
    unless ``--remove`` names the edge), validates it byte-for-byte
    against a full rebuild, then stages and commits it as a new
    generation on a simulated-disk store — spot-checking queries on
    both sides of the commit.
    """
    from repro.durability.fs import SimulatedFS
    from repro.graphs.traversal import bfs_distances
    from repro.rollout import GraphChange, IncrementalRelabeler, RolloutCoordinator
    from repro.rollout.battery import _pick_removable_edge
    from repro.service.store import ShardedLabelStore

    graph = parse_graph_spec(args.graph)
    print(f"graph:     {graph!r}")
    relabeler = IncrementalRelabeler(graph, args.epsilon)
    if args.remove is not None:
        edge = _parse_edge(args.remove)
        edge = (min(edge), max(edge))
    else:
        edge = _pick_removable_edge(graph, args.seed)
    print(f"change:    remove edge {edge}")
    plan = relabeler.plan(GraphChange(removed_edges=(edge,)))
    relabeler.validate(plan)
    print(f"plan:      {plan.num_rebuilt} label(s) rebuilt, "
          f"{plan.num_reused} reused — byte-validated against a full rebuild")

    fs = SimulatedFS(seed=args.seed)
    store = ShardedLabelStore(
        relabeler.encoded_labels(), num_shards=args.shards, seed=args.seed
    )
    store.attach_durability(fs, "rollout-demo")
    coordinator = RolloutCoordinator(store)
    coordinator.stage(1, plan.encoded_labels())
    print(f"staged:    generation 1 on {args.shards} shard(s) "
          f"(committed is still {store.committed_version})")
    coordinator.commit(1)
    print("committed: generation 1 is live")

    a, b = edge
    truth = bfs_distances(plan.new_graph, a).get(b, math.inf)
    shard = store.replicas(a)[0]
    served = store.fetch(shard, a).data is not None
    print(f"check:     d({a}, {b}) without the edge = {truth} "
          f"(stretch bound {relabeler.stretch_bound:.2f}); "
          f"shard {shard} serves vertex {a}: {served}")
    return 0


def cmd_rollout_battery(args: argparse.Namespace) -> int:
    """``repro rollout-battery``: crash the rollout at every kill-point.

    Stages and commits (resp. aborts) a new label generation on a
    simulated disk, crashing at every filesystem op the rollout
    crosses under every crash mode, and recovers through the manifest
    each time.  Checks: recovery lands on exactly one committed
    generation, every replica serves that generation's bytes (no
    mixed-version answers), probe queries obey the stretch bound
    against the committed graph's BFS truth, and incremental
    relabeling rebuilds strictly fewer labels on a non-global change.
    Exit code 0 only when every kill-point passes.
    """
    from repro.durability import CRASH_MODES
    from repro.rollout.battery import SCHEDULES, exhaustive_rollout_battery

    graph = parse_graph_spec(args.graph)
    print(f"graph:        {graph!r}")
    print(f"crash modes:  {', '.join(CRASH_MODES)}")
    print(f"schedules:    {', '.join(SCHEDULES)}")
    report = exhaustive_rollout_battery(
        graph,
        epsilon=args.epsilon,
        seed=args.seed,
        num_shards=args.shards,
        replication=args.replication,
        limit=args.limit,
    )
    ops = " + ".join(
        f"{count} ({name})" for name, count in report.rollout_fs_ops.items()
    )
    print(f"change:       remove edge {report.removed_edge} "
          f"({report.vertices} labels, {report.num_shards} shards, "
          f"replication {report.replication})")
    print(f"kill-points:  {ops} rollout ops × {len(CRASH_MODES)} modes "
          f"= {report.kill_point_runs} crash runs"
          f"{' (limited)' if args.limit is not None else ''}")
    print(f"recoveries:   {report.crashes_fired} fired — "
          f"{report.rollbacks} rolled back to generation 0, "
          f"{report.resumes} resumed onto generation 1")
    print(f"checks:       {report.label_checks} replica byte-comparisons, "
          f"{report.probe_queries} probe queries vs BFS truth")
    print(f"locality:     pendant removal rebuilt {report.locality_rebuilt}"
          f"/{report.locality_vertices} labels")
    if report.passed:
        print("rollout:      OK — every kill-point recovered onto exactly "
              "one committed generation")
        return 0
    print(f"rollout:      {len(report.violations)} VIOLATION(S)")
    for line in report.violations[:30]:
        print(f"  ! {line}")
    if len(report.violations) > 30:
        print(f"  ... and {len(report.violations) - 30} more")
    return 1


def cmd_serve_chaos(args: argparse.Namespace) -> int:
    """``repro serve-chaos``: shard-fault schedules against the service."""
    from repro.chaos import (
        random_shard_plan,
        run_service_plan,
        service_standard_suite,
    )
    from repro.service import RetryPolicy

    if args.plan is not None:
        from repro.chaos.plan import FaultPlan

        if args.graph is None:
            raise ReproError("serve-chaos --plan needs a graph spec")
        graph = parse_graph_spec(args.graph)
        with open(args.plan, "r", encoding="utf-8") as handle:
            plan = FaultPlan.from_json(handle.read())
        retry = RetryPolicy(hedging=not args.no_hedging)
        reports = [run_service_plan(
            graph, plan, epsilon=args.epsilon,
            num_shards=args.shards, replication=args.replication,
            retry=retry,
        )]
    elif args.graph is None:
        reports = service_standard_suite(
            num_schedules=args.schedules,
            num_events=args.events,
            seed=args.seed,
            epsilon=args.epsilon,
        )
    else:
        graph = parse_graph_spec(args.graph)
        retry = RetryPolicy(hedging=not args.no_hedging)
        reports = []
        for i in range(args.schedules):
            plan = random_shard_plan(
                graph,
                num_shards=args.shards,
                num_events=args.events,
                seed=args.seed + i,
                name=f"schedule {i} on {graph!r} (shards={args.shards}, "
                f"replicas={args.replication})",
            )
            reports.append(run_service_plan(
                graph, plan, epsilon=args.epsilon,
                num_shards=args.shards, replication=args.replication,
                retry=retry,
            ))
    violations = 0
    totals = {
        "queries": 0, "exact_answers": 0, "degraded_answers": 0,
        "retries": 0, "hedges": 0, "breaker_trips": 0,
    }
    for report in reports:
        print(report.summary())
        for line in report.violations:
            print(f"  ! {line}")
        violations += len(report.violations)
        for key in totals:
            totals[key] += report.metrics.get(key, 0)
    rate = (
        totals["degraded_answers"] / totals["queries"]
        if totals["queries"] else 0.0
    )
    print(
        f"\n{len(reports)} schedule(s), {violations} invariant violation(s)\n"
        f"totals: {totals['queries']} queries "
        f"({totals['exact_answers']} exact, "
        f"{totals['degraded_answers']} degraded, rate {rate:.2f}), "
        f"{totals['retries']} retries, {totals['hedges']} hedges, "
        f"{totals['breaker_trips']} breaker trips"
    )
    return 0 if violations == 0 else 1


def cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint``: run the contract-enforcing static-analysis pass.

    ``--deep`` stacks the whole-program rules (RPL010–013) on top of
    the per-file pass; ``--changed-only REF`` restricts *reporting*
    (never analysis — interprocedural findings need the whole program)
    to files changed since a git ref.
    """
    from repro.lint import (
        LintResult,
        deep_lint_paths,
        deep_rule_catalogue,
        deep_rule_ids,
        expand_select,
        lint_paths,
        render_json,
        render_sarif,
        render_text,
        rule_catalogue,
    )

    if args.list_rules:
        catalogue = rule_catalogue() + deep_rule_catalogue()
        for rule in catalogue:
            deep = " (--deep)" if rule["id"] in deep_rule_ids() else ""
            print(f"{rule['id']}  [{rule['severity']}]  {rule['summary']}{deep}")
            print(f"        contract: {rule['contract']}")
        return 0
    from pathlib import Path

    for entry in args.paths:
        if not Path(entry).exists():
            raise ReproError(f"no such path: {entry}")
    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    local_select, deep_select = _split_lint_select(
        select, deep=args.deep, expand=expand_select
    )
    try:
        result = lint_paths(args.paths, select=local_select)
        if args.deep and deep_select != []:
            deep_result = deep_lint_paths(
                args.paths,
                select=deep_select,
                cache_path=args.cache,
            )
            result = LintResult(
                findings=tuple(sorted(result.findings + deep_result.findings)),
                files_scanned=result.files_scanned,
            )
    except ValueError as exc:  # e.g. --select with an unknown rule id
        raise ReproError(str(exc)) from exc
    if args.changed_only is not None:
        result = _restrict_to_changed(result, args.changed_only)
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


def _split_lint_select(
    select: list[str] | None, deep: bool, expand: Any
) -> tuple[list[str] | None, list[str] | None]:
    """Partition ``--select`` tokens into per-file and deep rule sets.

    Without ``--deep``, a token matching only deep rules is an error
    that points at the flag.  Returns ``(local, deep)`` selections;
    ``None`` means "all rules of that tier", ``[]`` means "none".
    """
    from repro.lint.deep_rules import DEEP_RULES
    from repro.lint.engine import META_RULE_ID
    from repro.lint.rules import ALL_RULES

    if select is None:
        return None, None
    local_ids = {rule.rule_id for rule in ALL_RULES} | {META_RULE_ID}
    deep_ids = {rule.rule_id for rule in DEEP_RULES}
    try:
        wanted = expand(select, local_ids | deep_ids)
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    deep_wanted = sorted(wanted & deep_ids)
    if deep_wanted and not deep:
        raise ReproError(
            f"rule ids {deep_wanted} are whole-program rules; "
            "run with --deep to enable them"
        )
    return sorted(wanted & local_ids), deep_wanted


def _restrict_to_changed(result: Any, ref: str) -> Any:
    """Keep only findings in files changed since ``ref`` (git diff).

    Analysis already ran over the whole program; this trims the
    *report*, which is the only sound way to scope interprocedural
    findings to a diff.
    """
    import subprocess

    from repro.lint import LintResult

    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError) as exc:
        raise ReproError(
            f"--changed-only: cannot diff against {ref!r}: {exc}"
        ) from exc
    changed = {
        line.strip().replace("\\", "/")
        for line in proc.stdout.splitlines()
        if line.strip()
    }
    kept = tuple(
        finding
        for finding in result.findings
        if finding.path.replace("\\", "/") in changed
    )
    return LintResult(findings=kept, files_scanned=result.files_scanned)


def cmd_metrics(args: argparse.Namespace) -> int:
    """``repro metrics``: observed serve-chaos battery, exported metrics.

    Runs the seeded battery with every instrumentation hook attached
    and prints the aggregate registry in Prometheus text format (or
    canonical JSON).  The same seed always prints byte-identical
    output — that is the property the golden-trace test pins down.
    """
    from repro.obs.export import render_metrics_json, render_prometheus
    from repro.obs.harness import observed_service_battery

    registry, reports = observed_service_battery(
        num_schedules=args.schedules,
        num_events=args.events,
        seed=args.seed,
        epsilon=args.epsilon,
    )
    if args.format == "json":
        print(render_metrics_json(registry))
    else:
        print(render_prometheus(registry), end="")
    violations = sum(len(r.violations) for r in reports)
    return 0 if violations == 0 else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: one traced query with its decode span tree."""
    from repro.obs.export import render_trace_json, render_trace_text
    from repro.obs.trace import Tracer
    from repro.oracle.persistence import LabelDatabase

    db = LabelDatabase.load(args.database)
    edge_faults = [_parse_edge(e) for e in args.fail_edge]
    tracer = Tracer()
    result = db.query(
        args.source,
        args.target,
        vertex_faults=args.fail_vertex,
        edge_faults=edge_faults,
        tracer=tracer,
    )
    if args.format == "json":
        print(render_trace_json(tracer))
        return 0
    if math.isinf(result.distance):
        print(f"d({args.source}, {args.target} | F) = unreachable")
    else:
        print(f"d({args.source}, {args.target} | F) = {result.distance}")
    print(render_trace_text(tracer), end="")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: tracing overhead (obs) or kernel speedup (kernel).

    With ``--mode kernel``, ``--min-speedup R`` turns the run into a
    gate: exit status 1 when the measured kernel-vs-legacy speedup
    falls below ``R`` or any kernel answer differs from legacy.
    """
    import json as json_module

    from repro.obs.bench import run_bench

    payload = run_bench(
        seed=args.seed,
        epsilon=args.epsilon,
        num_queries=args.queries,
        repeats=args.repeats,
        emit=args.emit,
        mode=args.mode,
    )
    print(json_module.dumps(payload, indent=2, sort_keys=True))
    if args.emit:
        print(f"wrote {args.emit}")
    if args.mode == "kernel":
        deterministic = dict(payload["deterministic"])  # type: ignore[call-overload]
        timing = dict(payload["timing"])  # type: ignore[call-overload]
        if not deterministic["answers_identical"]:
            print("FAIL: kernel answers differ from the legacy decoder")
            return 1
        if args.min_speedup is not None and timing["speedup"] < args.min_speedup:
            print(
                f"FAIL: speedup {timing['speedup']}x is below the"
                f" --min-speedup {args.min_speedup}x gate"
            )
            return 1
    return 0


def cmd_traffic(args: argparse.Namespace) -> int:
    """``repro traffic``: the overload battery, judged against its SLOs.

    Replays the standard seeded 4x-overload mix (three tenants, diurnal
    phases, a fault burst, a mid-run shard outage) through the async
    gateway on virtual time, judges every outcome against BFS ground
    truth, and prints the SLO report.  Exit status 1 when any invariant
    or SLO was violated — the same contract ``repro metrics`` has.
    """
    import json as json_module

    from repro.gateway import standard_traffic_battery
    from repro.obs.export import render_prometheus
    from repro.obs.registry import Registry

    registry = Registry()
    report = standard_traffic_battery(
        seed=args.seed,
        duration_ms=args.duration_ms,
        offered_multiplier=args.multiplier,
        use_cache=not args.no_cache,
        coalescing=not args.no_coalescing,
        obs=registry,
    )
    if args.format == "json":
        print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_prometheus(registry), end="")
        print(f"# {report.summary()}")
    if not report.ok:
        for violation in report.violations[:20]:
            print(f"violation: {violation}", file=sys.stderr)
        return 1
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """``repro verify``: check a scheme against the paper's definitions."""
    from repro.labeling import ForbiddenSetLabeling, LabelingOptions
    from repro.labeling.verification import verify_scheme

    graph = parse_graph_spec(args.graph)
    scheme = ForbiddenSetLabeling(
        graph,
        epsilon=args.epsilon,
        options=LabelingOptions(low_level=args.low_level),
    )
    verify_scheme(graph, scheme)
    print(f"OK: {graph!r} at eps={args.epsilon} verifies against the paper's "
          "definitions")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """``repro experiment``: run experiment tables by id."""
    from repro.analysis.experiments import run_experiment

    for name in args.names:
        for table in run_experiment(name, quick=not args.full):
            print(table.render())
            print()
    return 0


def cmd_scenario_list(args: argparse.Namespace) -> int:
    """``repro scenario list``: the committed scenario library."""
    from repro.scenario import catalogue

    rows = catalogue(args.dir)
    if not rows:
        print("no scenarios found")
        return 0
    width = max(len(name) for name, _, _ in rows)
    for name, path, trace in rows:
        print(
            f"{name:<{width}}  {trace.graph_spec:<12} "
            f"{trace.duration_ms:>7.0f} ms  {len(trace.events):>3} events  "
            f"seed {trace.seed}  ({path.name})"
        )
    return 0


def cmd_scenario_validate(args: argparse.Namespace) -> int:
    """``repro scenario validate``: parse + compile, fail loudly.

    Every file is CRC-verified, round-tripped byte-for-byte through
    the canonical serializer, and compiled against its graph — the
    full strictness of the format, without replaying anything.
    """
    from repro.exceptions import ScenarioError
    from repro.scenario import (
        compile_trace,
        load_scenario,
        scenario_paths,
        serialize_trace,
    )

    paths = args.files or [str(p) for p in scenario_paths(args.dir)]
    if not paths:
        print("no scenario files to validate")
        return 0
    failures = 0
    for path in paths:
        try:
            trace = load_scenario(path)
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            canonical = serialize_trace(trace)
            if text != canonical:
                raise ScenarioError(
                    "file is not in canonical form (re-serialize it)"
                )
            compiled = compile_trace(trace)
            print(
                f"OK {path}: {trace.name} on {trace.graph_spec} — "
                f"{len(trace.events)} events, {len(compiled.actions)} "
                f"actions, {len(compiled.probes)} probes"
            )
        except ScenarioError as exc:
            failures += 1
            print(f"FAIL {path}: {exc}")
    return 0 if failures == 0 else 1


def cmd_scenario_run(args: argparse.Namespace) -> int:
    """``repro scenario run``: replay one trace through the full stack."""
    import json as json_module

    from repro.scenario import (
        ScenarioRunner,
        compile_trace,
        load_scenario,
    )

    trace = load_scenario(args.file)
    if args.seed is not None:
        trace = trace.with_seed(args.seed)
    compiled = compile_trace(trace)
    if args.emit_plan:
        with open(args.emit_plan, "w", encoding="utf-8") as handle:
            handle.write(compiled.fault_plan().to_json())
        print(f"wrote {args.emit_plan}")
    report = ScenarioRunner(compiled, epsilon=args.epsilon).run()
    if args.format == "json":
        print(report.to_json(), end="")
    else:
        print(report.summary())
        for row in report.windows:
            print(
                f"  [{row.start_ms:>7.1f}, {row.end_ms:>7.1f}) ms: "
                f"{row.submitted:>4} req, availability "
                f"{row.availability:.2f}, degraded {row.degraded_fraction:.2f}, "
                f"worst stretch {row.worst_stretch:.3f}, "
                f"detour {row.worst_detour:.3f}"
            )
    if not report.ok:
        for violation in report.violations[:20]:
            print(f"violation: {violation}", file=sys.stderr)
        return 1
    return 0


def cmd_scenario_search(args: argparse.Namespace) -> int:
    """``repro scenario search``: adversarial worst-F hunt, emitted as a trace."""
    from repro.scenario import serialize_trace, worst_f_search

    result = worst_f_search(
        args.graph,
        objective=args.objective,
        budget=args.budget,
        seed=args.seed,
        epsilon=args.epsilon,
        restarts=args.restarts,
        baseline_trials=args.baseline_trials,
    )
    print(result.summary())
    for pair in result.worst_pairs:
        print(
            f"  probe {pair.s}->{pair.t}: decoded {pair.decoded:g} vs "
            f"true {pair.true:g}, fault-free {pair.baseline:g} "
            f"(detour {pair.stretch:.4f})"
        )
    if args.emit:
        with open(args.emit, "w", encoding="utf-8") as handle:
            handle.write(serialize_trace(result.trace))
        print(f"wrote {args.emit} ({result.trace.name})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="forbidden-set distance labels (Abraham-Chechik-"
        "Gavoille-Peleg, PODC 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="build and save a label database")
    p_build.add_argument("graph", help="graph spec, e.g. grid:8x8")
    p_build.add_argument("-e", "--epsilon", type=float, default=1.0)
    p_build.add_argument("-o", "--output", default="labels.fsdl")
    p_build.add_argument("--low-level", choices=["full", "unit"], default="full")
    p_build.add_argument(
        "--format-version", type=int, choices=[1, 2], default=2,
        help="on-disk format: 2 = checksummed (default), 1 = legacy",
    )
    p_build.set_defaults(func=cmd_build)

    p_query = sub.add_parser("query", help="query a saved label database")
    p_query.add_argument("database")
    p_query.add_argument("-s", "--source", type=int, required=True)
    p_query.add_argument("-t", "--target", type=int, required=True)
    p_query.add_argument("--fail-vertex", type=int, action="append", default=[])
    p_query.add_argument(
        "--fail-edge", action="append", default=[], metavar="A-B"
    )
    p_query.set_defaults(func=cmd_query)

    p_info = sub.add_parser("info", help="inspect a saved label database")
    p_info.add_argument("database")
    p_info.set_defaults(func=cmd_info)

    p_fsck = sub.add_parser(
        "fsck", help="integrity-check a saved label database"
    )
    p_fsck.add_argument("database")
    p_fsck.set_defaults(func=cmd_fsck)

    p_chaos = sub.add_parser(
        "chaos", help="run seeded churn schedules with invariant checks"
    )
    p_chaos.add_argument(
        "graph", nargs="?", default=None,
        help="graph spec (omit to run the standard mixed-graph suite)",
    )
    p_chaos.add_argument("--schedules", type=int, default=5)
    p_chaos.add_argument("--events", type=int, default=100)
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--drop", type=float, default=0.0,
                         help="per-link message-drop probability")
    p_chaos.add_argument("-e", "--epsilon", type=float, default=1.0)
    p_chaos.set_defaults(func=cmd_chaos)

    p_serve = sub.add_parser(
        "serve-chaos",
        help="run shard-fault schedules against the label-serving runtime",
    )
    p_serve.add_argument(
        "graph", nargs="?", default=None,
        help="graph spec (omit to run the standard service matrix)",
    )
    p_serve.add_argument("--schedules", type=int, default=5)
    p_serve.add_argument("--events", type=int, default=60)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--shards", type=int, default=4)
    p_serve.add_argument("--replication", type=int, default=2)
    p_serve.add_argument("--no-hedging", action="store_true",
                         help="disable hedged reads to replicas")
    p_serve.add_argument(
        "--plan", default=None, metavar="PLAN.json",
        help="replay one canonical fault-plan document (e.g. emitted by "
             "'repro scenario run --emit-plan') instead of random schedules",
    )
    p_serve.add_argument("-e", "--epsilon", type=float, default=1.0)
    p_serve.set_defaults(func=cmd_serve_chaos)

    p_battery = sub.add_parser(
        "crash-battery",
        help="exhaustively crash-test the durability layer at every "
        "kill-point",
    )
    p_battery.add_argument(
        "graph", nargs="?", default="grid:4x4",
        help="graph spec for the label workload (default grid:4x4)",
    )
    p_battery.add_argument("--seed", type=int, default=0)
    p_battery.add_argument("--churn-rounds", type=int, default=3,
                           help="delete/re-put churn rounds in the workload")
    p_battery.add_argument("-e", "--epsilon", type=float, default=1.0)
    p_battery.set_defaults(func=cmd_crash_battery)

    p_rollout = sub.add_parser(
        "rollout",
        help="demo an incremental blue/green label rollout on simulated disk",
    )
    p_rollout.add_argument(
        "graph", nargs="?", default="grid:6x6",
        help="graph spec for the rollout demo (default grid:6x6)",
    )
    p_rollout.add_argument("--remove", default=None, metavar="A-B",
                           help="edge to remove (default: seeded choice)")
    p_rollout.add_argument("--seed", type=int, default=0)
    p_rollout.add_argument("--shards", type=int, default=4)
    p_rollout.add_argument("-e", "--epsilon", type=float, default=1.0)
    p_rollout.set_defaults(func=cmd_rollout)

    p_rollout_battery = sub.add_parser(
        "rollout-battery",
        help="crash a blue/green label rollout at every filesystem "
        "kill-point",
    )
    p_rollout_battery.add_argument(
        "graph", nargs="?", default="grid:6x6",
        help="graph spec for the rollout workload (default grid:6x6)",
    )
    p_rollout_battery.add_argument("--seed", type=int, default=0)
    p_rollout_battery.add_argument("--shards", type=int, default=4)
    p_rollout_battery.add_argument("--replication", type=int, default=2)
    p_rollout_battery.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="stride-sample the crash grid to at most N runs (CI smoke)",
    )
    p_rollout_battery.add_argument("-e", "--epsilon", type=float, default=1.0)
    p_rollout_battery.set_defaults(func=cmd_rollout_battery)

    p_verify = sub.add_parser(
        "verify", help="check a scheme against the paper's definitions"
    )
    p_verify.add_argument("graph")
    p_verify.add_argument("-e", "--epsilon", type=float, default=1.0)
    p_verify.add_argument("--low-level", choices=["full", "unit"], default="full")
    p_verify.set_defaults(func=cmd_verify)

    p_lint = sub.add_parser(
        "lint", help="run the contract-enforcing static-analysis pass"
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src/repro", "tools"],
        help="files/directories to lint (default: src/repro tools)",
    )
    p_lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format (json is the stable CI interface; sarif "
             "annotates PR diffs)",
    )
    p_lint.add_argument(
        "--select", default=None, metavar="RPL001,RPL01x",
        help="comma-separated rule ids to run; a trailing 'x' is a "
             "digit wildcard (RPL01x = the whole family)",
    )
    p_lint.add_argument(
        "--deep", action="store_true",
        help="also run the whole-program rules (RPL010-013: call-graph "
             "exception flow, cooperative races, nondeterminism taint, "
             "hot-path allocations)",
    )
    p_lint.add_argument(
        "--changed-only", default=None, metavar="REF",
        help="report only findings in files changed since the git REF "
             "(analysis still covers the whole program)",
    )
    p_lint.add_argument(
        "--cache", default=None, metavar="PATH",
        help="file-hash fact cache for --deep (incremental re-runs)",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_exp = sub.add_parser("experiment", help="run experiments E1..E13")
    p_exp.add_argument("names", nargs="+")
    p_exp.add_argument("--full", action="store_true")
    p_exp.set_defaults(func=cmd_experiment)

    p_metrics = sub.add_parser(
        "metrics",
        help="run an observed serve-chaos battery and export its metrics",
    )
    p_metrics.add_argument("--schedules", type=int, default=20)
    p_metrics.add_argument("--events", type=int, default=60)
    p_metrics.add_argument("--seed", type=int, default=0)
    p_metrics.add_argument("-e", "--epsilon", type=float, default=1.0)
    p_metrics.add_argument(
        "--format", choices=["prom", "json"], default="prom",
        help="prom = Prometheus text exposition, json = canonical JSON",
    )
    p_metrics.set_defaults(func=cmd_metrics)

    p_trace = sub.add_parser(
        "trace", help="answer one query and print its decode span tree"
    )
    p_trace.add_argument("database")
    p_trace.add_argument("-s", "--source", type=int, required=True)
    p_trace.add_argument("-t", "--target", type=int, required=True)
    p_trace.add_argument("--fail-vertex", type=int, action="append", default=[])
    p_trace.add_argument(
        "--fail-edge", action="append", default=[], metavar="A-B"
    )
    p_trace.add_argument(
        "--format", choices=["text", "json"], default="text"
    )
    p_trace.set_defaults(func=cmd_trace)

    p_bench = sub.add_parser(
        "bench",
        help="measure instrumentation overhead or kernel decode speedup",
    )
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("-e", "--epsilon", type=float, default=1.0)
    p_bench.add_argument("--queries", type=int, default=120)
    p_bench.add_argument("--repeats", type=int, default=5)
    p_bench.add_argument(
        "--mode", choices=["obs", "kernel"], default="obs",
        help="obs: tracing overhead budget; kernel: kernel-vs-legacy speedup",
    )
    p_bench.add_argument(
        "--min-speedup", type=float, default=None, metavar="R",
        help="(kernel mode) exit 1 if the measured speedup is below R",
    )
    p_bench.add_argument(
        "--emit", default=None, metavar="PATH",
        help="also write the payload as JSON to PATH (e.g. BENCH_10.json)",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_traffic = sub.add_parser(
        "traffic",
        help="run the seeded overload battery through the async gateway",
    )
    p_traffic.add_argument("--seed", type=int, default=0)
    p_traffic.add_argument(
        "--duration-ms", type=float, default=1000.0,
        help="virtual milliseconds of traffic to replay",
    )
    p_traffic.add_argument(
        "--multiplier", type=float, default=4.0,
        help="offered load relative to what the backend absorbs",
    )
    p_traffic.add_argument(
        "--no-cache", action="store_true",
        help="disable the label cache layer",
    )
    p_traffic.add_argument(
        "--no-coalescing", action="store_true",
        help="disable in-flight request coalescing",
    )
    p_traffic.add_argument(
        "--format", choices=["prom", "json"], default="prom",
        help="prom = Prometheus text + summary line, json = full report",
    )
    p_traffic.set_defaults(func=cmd_traffic)

    p_scenario = sub.add_parser(
        "scenario",
        help="declarative scenario traces: validate, replay, and attack",
    )
    scenario_sub = p_scenario.add_subparsers(dest="action", required=True)

    p_sc_list = scenario_sub.add_parser(
        "list", help="show the committed scenario library"
    )
    p_sc_list.add_argument(
        "--dir", default=None, metavar="DIR",
        help="scenario directory (default: the repo's scenarios/)",
    )
    p_sc_list.set_defaults(func=cmd_scenario_list)

    p_sc_validate = scenario_sub.add_parser(
        "validate",
        help="parse, CRC-check, canonicality-check and compile scenario "
        "files",
    )
    p_sc_validate.add_argument(
        "files", nargs="*",
        help="scenario files (default: every file in the library)",
    )
    p_sc_validate.add_argument(
        "--dir", default=None, metavar="DIR",
        help="library directory when no files are given",
    )
    p_sc_validate.set_defaults(func=cmd_scenario_validate)

    p_sc_run = scenario_sub.add_parser(
        "run", help="replay one scenario through the full serving stack"
    )
    p_sc_run.add_argument("file", help="the .scenario file to replay")
    p_sc_run.add_argument(
        "--seed", type=int, default=None,
        help="override the trace's seed (default: as committed)",
    )
    p_sc_run.add_argument("-e", "--epsilon", type=float, default=1.0)
    p_sc_run.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="text = summary + per-window table, json = canonical report",
    )
    p_sc_run.add_argument(
        "--emit-plan", default=None, metavar="PLAN.json",
        help="also write the lowered fault plan (replayable via "
             "'repro serve-chaos --plan')",
    )
    p_sc_run.set_defaults(func=cmd_scenario_run)

    p_sc_search = scenario_sub.add_parser(
        "search",
        help="adversarial worst-F search; emit the worst trace found",
    )
    p_sc_search.add_argument("graph", help="graph spec, e.g. grid:8x8")
    p_sc_search.add_argument(
        "--objective", choices=["stretch", "degraded"], default="stretch",
    )
    p_sc_search.add_argument("--budget", type=int, default=3,
                             help="fault budget |F| <= k")
    p_sc_search.add_argument("--seed", type=int, default=0)
    p_sc_search.add_argument("--restarts", type=int, default=1)
    p_sc_search.add_argument("--baseline-trials", type=int, default=24)
    p_sc_search.add_argument("-e", "--epsilon", type=float, default=1.0)
    p_sc_search.add_argument(
        "--emit", default=None, metavar="FILE.scenario",
        help="write the worst trace found as a replayable scenario file",
    )
    p_sc_search.set_defaults(func=cmd_scenario_search)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
