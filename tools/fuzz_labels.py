#!/usr/bin/env python
"""Standalone seeded corruption smoke for label databases.

Builds a scheme, saves a v2 database, then replays seeded corruptions
(bit flips, overwritten bytes, truncations, appended garbage, lying
length fields) and demands **error or exact answer** from both the
strict and the quarantine load paths — a silently wrong distance fails
the run.

Usage::

    PYTHONPATH=src python tools/fuzz_labels.py [--trials 300] [--seed 0]
        [--graph grid:6x6] [--epsilon 1.0] [--probes 6]

Exit status 0 = no silent-wrong answers; 1 otherwise.  Runnable in CI
as a smoke independent of pytest.
"""

from __future__ import annotations

import argparse
import io
import sys
import time


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--graph", default="grid:6x6")
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--probes", type=int, default=6,
                        help="number of probe queries checked per mutation")
    args = parser.parse_args(argv)

    from repro.chaos import fuzz_database
    from repro.cli import parse_graph_spec
    from repro.labeling import ForbiddenSetLabeling
    from repro.oracle.persistence import save_labels
    from repro.util.rng import make_rng

    graph = parse_graph_spec(args.graph)
    scheme = ForbiddenSetLabeling(graph, epsilon=args.epsilon)
    buffer = io.BytesIO()
    size = save_labels(scheme, buffer)
    blob = buffer.getvalue()
    print(f"database: {graph!r} at eps={args.epsilon}, {size} bytes (v2)")

    rng = make_rng(args.seed)
    n = graph.num_vertices
    probes = []
    while len(probes) < args.probes:
        s, t = rng.sample(range(n), 2)
        faults = tuple(
            f for f in rng.sample(range(n), rng.randint(0, 2))
            if f not in (s, t)
        )
        probes.append((s, t, faults))

    # elapsed measurement only — perf_counter, never the wall clock; the
    # mutation RNG is an explicit seeded repro.util.rng generator
    mutation_rng = make_rng(args.seed)
    start = time.perf_counter()
    report = fuzz_database(blob, probes, trials=args.trials, seed=mutation_rng)
    elapsed = time.perf_counter() - start
    print(report.summary())
    print(f"elapsed: {elapsed:.1f}s")
    for line in report.silent_wrong[:10]:
        print(f"  ! {line}", file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
