"""Regenerate the committed ``scenarios/`` library.

Usage:  PYTHONPATH=src python tools/gen_scenarios.py [-o scenarios]

Five families are hand-designed here; the sixth
(``adversarial-found``) is the committed output of a real
:func:`repro.scenario.worst_f_search` run, so the library always
contains a search-discovered regression.  Every file is written
through the canonical serializer (CRC footer included), and the whole
script is deterministic: regenerating produces byte-identical files.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.scenario import serialize_trace, worst_f_search
from repro.scenario.trace import ScenarioEvent, ScenarioTrace, TraceTenant

#: the seed every hand-designed library trace replays under
LIBRARY_SEED = 7

#: the pinned search configuration behind ``adversarial-found``
SEARCH_SPEC = "grid:8x8"
SEARCH_BUDGET = 3
SEARCH_SEED = 0


def regional_ball_outage() -> ScenarioTrace:
    """One correlated regional outage ``B(27, 2)`` with recovery."""
    return ScenarioTrace(
        name="regional-ball-outage",
        graph_spec="grid:8x8",
        duration_ms=400.0,
        seed=LIBRARY_SEED,
        base_rate_per_ms=0.4,
        window_ms=50.0,
        events=(
            ScenarioEvent(
                at_ms=100.0, kind="ball_outage", center=27, radius=2,
                duration_ms=150.0, fault_rate=0.9, max_faults=3,
            ),
            ScenarioEvent(at_ms=130.0, kind="probe", s=0, t=63,
                          faults=(26, 27, 28)),
            ScenarioEvent(at_ms=180.0, kind="probe", s=24, t=31,
                          faults=(27, 35)),
            ScenarioEvent(at_ms=320.0, kind="probe", s=0, t=63),
        ),
    )


def cascading_double_ball() -> ScenarioTrace:
    """Two regional outages, the second landing before the first heals."""
    return ScenarioTrace(
        name="cascading-double-ball",
        graph_spec="grid:8x8",
        duration_ms=500.0,
        seed=LIBRARY_SEED,
        base_rate_per_ms=0.4,
        window_ms=50.0,
        events=(
            ScenarioEvent(
                at_ms=80.0, kind="ball_outage", center=18, radius=2,
                duration_ms=160.0,
            ),
            ScenarioEvent(at_ms=120.0, kind="probe", s=0, t=63,
                          faults=(17, 18, 19)),
            ScenarioEvent(
                at_ms=200.0, kind="ball_outage", center=45, radius=2,
                duration_ms=180.0,
            ),
            ScenarioEvent(at_ms=260.0, kind="probe", s=7, t=56,
                          faults=(44, 45, 46)),
        ),
    )


def rolling_maintenance() -> ScenarioTrace:
    """A maintenance sweep over every shard, one window after another."""
    return ScenarioTrace(
        name="rolling-maintenance",
        graph_spec="grid:6x6",
        duration_ms=400.0,
        seed=LIBRARY_SEED,
        base_rate_per_ms=0.4,
        window_ms=50.0,
        events=(
            ScenarioEvent(
                at_ms=60.0, kind="maintenance", shards=(0, 1, 2, 3),
                window_ms=60.0,
            ),
            ScenarioEvent(at_ms=150.0, kind="probe", s=0, t=35),
            ScenarioEvent(at_ms=350.0, kind="probe", s=5, t=30),
        ),
    )


def flash_crowd_during_outage() -> ScenarioTrace:
    """A flash crowd arrives while a regional outage is still open."""
    return ScenarioTrace(
        name="flash-crowd-during-outage",
        graph_spec="grid:8x8",
        duration_ms=400.0,
        seed=LIBRARY_SEED,
        base_rate_per_ms=0.3,
        window_ms=50.0,
        events=(
            ScenarioEvent(
                at_ms=100.0, kind="ball_outage", center=36, radius=2,
                duration_ms=180.0,
            ),
            ScenarioEvent(
                at_ms=140.0, kind="flash_crowd", multiplier=3.0,
                duration_ms=120.0,
            ),
            ScenarioEvent(at_ms=200.0, kind="probe", s=0, t=63,
                          faults=(35, 36, 37)),
        ),
    )


def crash_storm_mid_rollout() -> ScenarioTrace:
    """Shards crash and restart while a label rollout is staged."""
    return ScenarioTrace(
        name="crash-storm-mid-rollout",
        graph_spec="grid:6x6",
        duration_ms=500.0,
        seed=LIBRARY_SEED,
        base_rate_per_ms=0.4,
        window_ms=50.0,
        events=(
            ScenarioEvent(at_ms=80.0, kind="rollout_begin", edge=(0, 1)),
            ScenarioEvent(at_ms=120.0, kind="shard_crash", shard=1),
            ScenarioEvent(at_ms=160.0, kind="shard_restart", shard=1),
            ScenarioEvent(at_ms=200.0, kind="shard_crash", shard=2),
            ScenarioEvent(at_ms=240.0, kind="shard_restart", shard=2),
            ScenarioEvent(at_ms=300.0, kind="rollout_commit"),
            ScenarioEvent(at_ms=360.0, kind="probe", s=0, t=35),
            ScenarioEvent(at_ms=400.0, kind="probe", s=1, t=30),
        ),
    )


def adversarial_found() -> ScenarioTrace:
    """The committed output of a real worst-``F`` search run."""
    result = worst_f_search(
        SEARCH_SPEC,
        objective="stretch",
        budget=SEARCH_BUDGET,
        seed=SEARCH_SEED,
    )
    return result.trace


def generate(out_dir: Path) -> list[Path]:
    """Write every library scenario into ``out_dir``; return the paths."""
    out_dir.mkdir(parents=True, exist_ok=True)
    builders = (
        ("regional-ball-outage", regional_ball_outage),
        ("cascading-double-ball", cascading_double_ball),
        ("rolling-maintenance", rolling_maintenance),
        ("flash-crowd-during-outage", flash_crowd_during_outage),
        ("crash-storm-mid-rollout", crash_storm_mid_rollout),
        ("adversarial-found", adversarial_found),
    )
    written = []
    for stem, builder in builders:
        path = out_dir / f"{stem}.scenario"
        path.write_text(serialize_trace(builder()), encoding="utf-8")
        written.append(path)
    return written


def main() -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="scenarios")
    args = parser.parse_args()
    for path in generate(Path(args.output)):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
