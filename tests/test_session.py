"""Tests for fault-scoped query sessions."""

import math
import time

import pytest

from repro.exceptions import QueryError
from repro.graphs.generators import cycle_graph, grid_graph, road_like_graph
from repro.labeling import FaultSet, ForbiddenSetLabeling, decode_distance
from repro.labeling.session import FaultScopedSession
from repro.workloads import random_queries


class TestEquivalence:
    """Session answers must equal the one-shot decoder, query by query."""

    @pytest.mark.parametrize("faults", [[], [24], [24, 10, 38]])
    def test_matches_decoder_on_grid(self, faults):
        g = grid_graph(7, 7)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        fault_set = scheme.fault_set(vertex_faults=faults)
        session = FaultScopedSession(fault_set)
        for s, t in [(0, 48), (3, 45), (21, 27), (6, 42)]:
            one_shot = decode_distance(scheme.label(s), scheme.label(t), fault_set)
            via_session = session.query(scheme.label(s), scheme.label(t))
            assert via_session.distance == one_shot.distance

    def test_matches_decoder_with_edge_faults(self):
        g = road_like_graph(7, 7, seed=2)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        edges = list(g.edges())[:3]
        fault_set = scheme.fault_set(edge_faults=edges)
        session = FaultScopedSession(fault_set)
        for q in random_queries(g, 15, max_vertex_faults=0, seed=3):
            one_shot = decode_distance(
                scheme.label(q.s), scheme.label(q.t), fault_set
            )
            via_session = session.query(scheme.label(q.s), scheme.label(q.t))
            assert via_session.distance == one_shot.distance

    def test_disconnection_detected(self):
        g = cycle_graph(16)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        session = FaultScopedSession(scheme.fault_set(vertex_faults=[4, 12]))
        result = session.query(scheme.label(0), scheme.label(8))
        assert math.isinf(result.distance)

    def test_identity_query(self):
        g = cycle_graph(8)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        session = FaultScopedSession()
        assert session.query(scheme.label(3), scheme.label(3)).distance == 0

    def test_endpoint_fault_rejected(self):
        g = cycle_graph(8)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        session = FaultScopedSession(scheme.fault_set(vertex_faults=[3]))
        with pytest.raises(QueryError):
            session.query(scheme.label(3), scheme.label(5))


class TestStatelessness:
    def test_queries_do_not_leak_into_each_other(self):
        """Endpoint fragments from one query must not affect the next."""
        g = grid_graph(6, 6)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        fault_set = scheme.fault_set(vertex_faults=[14])
        session = FaultScopedSession(fault_set)
        first = session.query(scheme.label(0), scheme.label(35)).distance
        # an unrelated query in between
        session.query(scheme.label(5), scheme.label(30))
        second = session.query(scheme.label(0), scheme.label(35)).distance
        assert first == second

    def test_session_faults_property(self):
        g = cycle_graph(8)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        fs = scheme.fault_set(vertex_faults=[2])
        assert FaultScopedSession(fs).faults is fs


class TestAmortization:
    def test_session_not_slower_by_much_and_usually_faster(self):
        g = grid_graph(9, 9)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        faults = [40, 41, 31, 49, 22, 58]
        fault_set = scheme.fault_set(vertex_faults=faults)
        pairs = [(s, t) for s in (0, 8, 72) for t in (80, 44, 36)]
        labels = {v: scheme.label(v) for s, t in pairs for v in (s, t)}

        start = time.perf_counter()
        one_shot = [
            decode_distance(labels[s], labels[t], fault_set).distance
            for s, t in pairs
        ]
        t_decoder = time.perf_counter() - start

        session = FaultScopedSession(fault_set)
        start = time.perf_counter()
        amortized = [
            session.query(labels[s], labels[t]).distance for s, t in pairs
        ]
        t_session = time.perf_counter() - start

        assert amortized == one_shot
        # generous bound: the session must not be drastically slower;
        # (in practice it is several times faster — see bench_session)
        assert t_session < 3 * t_decoder + 0.05
