"""Tests for r-dominating sets (Fact 1) and the net hierarchy (Lemma 2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError, LabelingError
from repro.graphs import Graph, bfs_distances
from repro.graphs.doubling import (
    doubling_dimension_estimate,
    greedy_ball_cover,
    packing_bound_holds,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
)
from repro.nets import (
    NetHierarchy,
    greedy_dominating_set,
    is_r_dominating,
    min_pairwise_distance_at_least,
)


class TestGreedyDominatingSet:
    def test_r1_selects_everything(self):
        g = path_graph(6)
        assert greedy_dominating_set(g, 1) == set(range(6))

    def test_radius_validation(self):
        with pytest.raises(GraphError):
            greedy_dominating_set(path_graph(3), 0)

    def test_fact1_guarantees_on_path(self):
        g = path_graph(33)
        for r in (2, 4, 8):
            w = greedy_dominating_set(g, r)
            assert is_r_dominating(g, w, r - 1)  # (r-1)-dominating
            assert min_pairwise_distance_at_least(g, w, r)  # packing

    def test_fact1_guarantees_on_grid(self):
        g = grid_graph(9, 9)
        for r in (2, 4):
            w = greedy_dominating_set(g, r)
            assert is_r_dominating(g, w, r - 1)
            assert min_pairwise_distance_at_least(g, w, r)

    def test_custom_order_changes_selection(self):
        g = path_graph(5)
        w_forward = greedy_dominating_set(g, 3)
        w_backward = greedy_dominating_set(g, 3, order=range(4, -1, -1))
        assert 0 in w_forward and 4 in w_backward

    def test_is_r_dominating_empty_candidates(self):
        assert not is_r_dominating(path_graph(2), [], 5)
        assert is_r_dominating(Graph(0), [], 5)


class TestNetHierarchy:
    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            NetHierarchy(Graph(0))

    def test_properties_validate_on_families(self):
        for g in (path_graph(40), cycle_graph(30), grid_graph(7, 7), random_tree(50, 1)):
            NetHierarchy(g).validate()

    def test_n0_is_all_vertices(self):
        h = NetHierarchy(path_graph(10))
        assert h.net(0) == set(range(10))

    def test_nets_shrink(self):
        h = NetHierarchy(grid_graph(8, 8))
        sizes = h.net_sizes()
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
        assert sizes[0] == 64

    def test_nearest_net_point_distance_bound(self):
        g = grid_graph(8, 8)
        h = NetHierarchy(g)
        for level in range(h.top_level + 1):
            for v in g.vertices():
                point, dist = h.nearest_net_point(level, v)
                assert point in h.net(level)
                assert dist < (1 << level)
                assert bfs_distances(g, v)[point] == dist

    def test_level_out_of_range(self):
        h = NetHierarchy(path_graph(4))
        with pytest.raises(LabelingError):
            h.net(h.top_level + 1)
        with pytest.raises(LabelingError):
            h.nearest_net_point(-1, 0)

    def test_single_vertex_graph(self):
        h = NetHierarchy(Graph(1))
        assert h.net(0) == {0}
        assert h.nearest_net_point(h.top_level, 0) == (0, 0)

    def test_lemma_2_2_packing_bound(self):
        # |B(v, R) ∩ N_i| <= 2 (4R / 2^i)^alpha with alpha ~ 1 on paths,
        # ~2 on grids
        g = path_graph(64)
        h = NetHierarchy(g)
        for level in range(1, h.top_level + 1):
            for v in (0, 31, 63):
                for radius in (2, 8, 32):
                    ball = bfs_distances(g, v, radius=radius)
                    count = sum(1 for u in ball if u in h.net(level))
                    assert count <= 2 * max(1.0, (4 * radius / (1 << level))) ** 1.0


class TestDoublingEstimation:
    def test_path_estimate_small(self):
        assert doubling_dimension_estimate(path_graph(64), seed=0) <= 2.0

    def test_grid_estimate_moderate(self):
        est = doubling_dimension_estimate(grid_graph(10, 10), seed=0)
        assert 1.0 <= est <= 3.5

    def test_complete_graph_estimate(self):
        # K_n: B(v, 2) is everything and a single radius-1 ball covers it
        assert doubling_dimension_estimate(complete_graph(16), seed=0) <= 1.0

    def test_edgeless(self):
        assert doubling_dimension_estimate(Graph(5)) == 0.0

    def test_greedy_ball_cover_covers(self):
        g = grid_graph(7, 7)
        centers = greedy_ball_cover(g, 24, 4, 2)
        covered = set()
        for center in centers:
            covered.update(bfs_distances(g, center, radius=2))
        assert covered >= set(bfs_distances(g, 24, radius=4))

    def test_packing_bound_holds_for_net(self):
        g = grid_graph(8, 8)
        net = greedy_dominating_set(g, 4)
        assert packing_bound_holds(g, net, spacing=4, alpha=2.5, seed=0)


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 50), st.integers(0, 10**6))
def test_hierarchy_properties_on_random_trees(n, seed):
    g = random_tree(n, seed)
    h = NetHierarchy(g)
    h.validate()
    # top net dominates within 2^top - 1
    top = h.top_level
    for v in range(0, n, max(1, n // 7)):
        _, dist = h.nearest_net_point(top, v)
        assert dist < (1 << top)
