"""Tests for spanner utilities and their role in Section 3."""

import math

from repro.graphs import Graph
from repro.graphs.generators import (
    cycle_graph,
    half_king_grid,
    king_grid,
    path_graph,
)
from repro.graphs.spanners import is_spanner, is_subgraph, spanner_stretch


class TestSubgraph:
    def test_subgraph_of_itself(self):
        g = cycle_graph(6)
        assert is_subgraph(g, g.copy())

    def test_not_subgraph_extra_edge(self):
        g = path_graph(4)
        h = path_graph(4)
        h.add_edge(0, 3)
        assert not is_subgraph(g, h)

    def test_different_sizes(self):
        assert not is_subgraph(path_graph(4), path_graph(5))


class TestStretch:
    def test_identity_stretch_one(self):
        g = cycle_graph(8)
        assert spanner_stretch(g, g.copy()) == 1.0

    def test_cycle_minus_edge(self):
        g = cycle_graph(8)
        h = g.subgraph_without(removed_edges=[(0, 7)])
        assert spanner_stretch(g, h) == 7.0

    def test_disconnected_candidate_inf(self):
        g = path_graph(4)
        h = Graph(4)  # no edges at all
        assert math.isinf(spanner_stretch(g, h))

    def test_half_king_is_2_spanner_of_king(self):
        """The cornerstone of Theorem 3.1's construction."""
        for p, d in ((4, 2), (3, 4)):
            g = king_grid(p, d)
            h = half_king_grid(p, d)
            assert is_spanner(g, h, 2)

    def test_spanner_predicate_rejects_too_small_stretch(self):
        g = cycle_graph(8)
        h = g.subgraph_without(removed_edges=[(0, 7)])
        assert not is_spanner(g, h, 2)
        assert is_spanner(g, h, 7)
