"""Smoke tests for the experiment harness (fast experiments only; the
slow ones run through ``pytest benchmarks/``)."""

import pytest

from repro.analysis.experiments import run_e3, run_e8, run_e9, run_e12, run_e14
from repro.analysis.report import _CLAIMS, generate_report
from repro.analysis.experiments import EXPERIMENTS


class TestFastExperiments:
    def test_e3_rows_monotone_in_c(self):
        (table,) = run_e3(quick=True)
        rows = sorted(table.rows, key=lambda r: r["c(eps)"])
        for a, b in zip(rows, rows[1:]):
            if b["c(eps)"] > a["c(eps)"]:
                assert b["max_bits"] > a["max_bits"]

    def test_e8_has_size_columns(self):
        (table,) = run_e8(quick=True)
        for row in table.rows:
            if row["routed"] > 0:
                assert row["max_header_bits"] > 0
                assert row["max_table_entries"] > 0
            assert row["undeliverable"] == 0

    def test_e9_counting_consistency(self):
        counting, upper = run_e9(quick=True)
        assert all(row["ok"] for row in upper.rows)
        for row in counting.rows:
            # lb per label = log2|F| / n
            assert row["lb_bits/label"] == pytest.approx(
                row["log2|F|"] / row["n"]
            )

    def test_e12_tree_baseline_exact(self):
        tree_table, ff_table = run_e12(quick=True)
        tree_row = next(
            row for row in tree_table.rows if "tree" in row["scheme"]
        )
        answered, total = tree_row["exact_answers"].split("/")
        assert answered == total
        assert all(row["ok"] for row in ff_table.rows)

    def test_e14_clean(self):
        (table,) = run_e14(quick=True)
        assert all(row["violations"] == 0 for row in table.rows)


class TestReportGeneration:
    def test_claims_cover_every_experiment(self):
        assert set(_CLAIMS) == set(EXPERIMENTS)

    def test_generate_report_single_experiment(self):
        text = generate_report(full=False, experiments=["E9"])
        assert "## E9" in text
        assert "Claim (paper)" in text
        assert "```text" in text

    def test_report_main_writes_file(self, tmp_path, capsys):
        from repro.analysis.report import main as report_main

        output = tmp_path / "report.md"
        assert report_main(["--exp", "E9", "-o", str(output)]) == 0
        assert output.exists()
        assert "## E9" in output.read_text()

    def test_experiments_main_cli(self, capsys):
        from repro.analysis.experiments import main as experiments_main

        assert experiments_main(["--exp", "E9"]) == 0
        out = capsys.readouterr().out
        assert "E9a" in out and "done in" in out
