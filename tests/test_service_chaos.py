"""Tests for the shard-level chaos DSL and the service chaos runner.

The fast smoke subset runs in the default test run; the full acceptance
battery (20 mixed shard-fault schedules) carries the ``chaos`` marker.
"""

import pytest

from repro.chaos import (
    ChaosEvent,
    FaultPlan,
    NETWORK_EVENT_KINDS,
    SERVICE_EVENT_KINDS,
    ServiceChaosRunner,
    random_shard_plan,
    run_service_plan,
    service_standard_suite,
)
from repro.exceptions import QueryError
from repro.graphs.generators import cycle_graph, grid_graph


class TestShardEventDSL:
    def test_kind_partition_is_disjoint_and_complete(self):
        from repro.chaos import EVENT_KINDS

        assert NETWORK_EVENT_KINDS & SERVICE_EVENT_KINDS == frozenset()
        assert NETWORK_EVENT_KINDS | SERVICE_EVENT_KINDS == EVENT_KINDS

    def test_shard_events_validated(self):
        with pytest.raises(QueryError):
            ChaosEvent(kind="shard_down")  # no shard
        with pytest.raises(QueryError):
            ChaosEvent(kind="shard_slow", shard=0)  # no latency
        with pytest.raises(QueryError):
            ChaosEvent(kind="shard_slow", shard=0, latency_ms=-1.0)
        with pytest.raises(QueryError):
            ChaosEvent(kind="shard_flaky", shard=0, probability=1.5)
        with pytest.raises(QueryError):
            ChaosEvent(kind="shard_corrupt", shard=0, probability=0.0)
        with pytest.raises(QueryError):
            ChaosEvent(kind="query", s=0)  # no t
        with pytest.raises(QueryError):
            ChaosEvent(kind="advance")  # no latency

    def test_fluent_builders_chain(self):
        plan = (
            FaultPlan(seed=3)
            .shard_down(0)
            .shard_slow(1, latency_ms=80.0)
            .shard_flaky(2, probability=0.5)
            .shard_corrupt(3, fraction=0.25)
            .query(0, 5, faults=(2,), fault_edges=[(4, 3)])
            .advance(100.0)
            .shard_recover(0)
        )
        kinds = [e.kind for e in plan]
        assert kinds == [
            "shard_down", "shard_slow", "shard_flaky", "shard_corrupt",
            "query", "advance", "shard_recover",
        ]
        query = plan.events[4]
        assert query.fault_edges == ((3, 4),)  # orientation normalized

    def test_random_shard_plan_deterministic(self):
        graph = grid_graph(4, 4)
        a = random_shard_plan(graph, seed=11, num_events=30)
        b = random_shard_plan(graph, seed=11, num_events=30)
        assert a.events == b.events
        assert a.seed == b.seed
        c = random_shard_plan(graph, seed=12, num_events=30)
        assert a.events != c.events

    def test_random_shard_plan_events_valid(self):
        graph = grid_graph(4, 4)
        plan = random_shard_plan(graph, num_shards=3, seed=2, num_events=50)
        down: set[int] = set()
        for event in plan:
            assert event.kind in SERVICE_EVENT_KINDS
            if event.kind == "shard_down":
                assert event.shard not in down  # no double-down
                down.add(event.shard)
            elif event.kind == "shard_recover":
                down.discard(event.shard)
            elif event.kind == "query":
                assert event.s != event.t
                assert event.s not in event.faults
                assert event.t not in event.faults
        assert not down  # stabilize tail healed everything

    def test_stabilize_tail_ends_with_probes(self):
        graph = grid_graph(4, 4)
        plan = random_shard_plan(graph, seed=4, num_events=20)
        tail = plan.events[-5:]
        assert tail[0].kind == "advance"
        assert all(e.kind == "query" for e in tail[1:])

    def test_random_plans_exercise_crash_and_restart(self):
        graph = grid_graph(4, 4)
        kinds: set[str] = set()
        for seed in range(8):
            plan = random_shard_plan(graph, seed=seed, num_events=40)
            kinds |= {e.kind for e in plan}
            crashed: set[int] = set()
            for event in plan:
                if event.kind == "shard_crash":
                    crashed.add(event.shard)
                elif event.kind in ("shard_restart", "shard_recover"):
                    crashed.discard(event.shard)
            assert not crashed  # every crash is eventually restarted
        assert "shard_crash" in kinds
        assert "shard_restart" in kinds


class TestServiceChaosRunner:
    def test_scripted_outage_window(self):
        """Down both replicas of a vertex, query, recover, query again."""
        graph = grid_graph(4, 4)
        plan = (
            FaultPlan(seed=5, name="scripted outage")
            .query(0, 15)
            .shard_down(0)
            .shard_down(1)
            .query(0, 15)  # vertex 0 lives on shards {0, 1}: degraded
            .shard_recover(0)
            .shard_recover(1)
            .advance(600.0)
            .query(0, 15)
        )
        runner = ServiceChaosRunner(
            graph, plan, num_shards=4, replication=2
        )
        report = runner.run()
        assert report.ok, report.violations
        assert report.exact_answers >= 2 + runner._final_probes
        assert report.degraded_answers == 1
        assert runner.service.store.all_healthy()

    def test_scripted_crash_restart_window(self):
        """Crash both replicas of a vertex, restart, and demand exact answers.

        A restart forces a genuine reload from the simulated disk: the
        runner attaches a :class:`SimulatedFS` durability root, so the
        shard's labels round-trip through the WAL + snapshot on the way
        back, and post-restart probes must match the pristine answers.
        """
        graph = grid_graph(4, 4)
        plan = (
            FaultPlan(seed=6, name="scripted crash/restart")
            .query(0, 15)
            .shard_crash(0)
            .shard_crash(1)
            .query(0, 15)  # vertex 0 lives on shards {0, 1}: degraded
            .shard_restart(0)
            .shard_restart(1)
            .advance(600.0)
            .query(0, 15)
            .query(3, 12)
        )
        runner = ServiceChaosRunner(
            graph, plan, num_shards=4, replication=2
        )
        report = runner.run()
        assert report.ok, report.violations
        assert report.exact_answers >= 3 + runner._final_probes
        assert report.degraded_answers == 1
        assert runner.service.store.all_healthy()

    def test_crash_then_recover_event_requires_restart_semantics(self):
        """A mixed schedule interleaving crashes with classic faults."""
        graph = cycle_graph(12)
        plan = (
            FaultPlan(seed=7, name="mixed crash + slow")
            .shard_slow(2, latency_ms=40.0)
            .shard_crash(0)
            .query(1, 7)
            .shard_restart(0)
            .shard_recover(2)
            .advance(600.0)
            .query(1, 7)
        )
        report = run_service_plan(graph, plan, num_shards=3, replication=2)
        assert report.ok, report.violations

    def test_smoke_schedules_zero_violations(self):
        for seed in (1, 2):
            graph = grid_graph(4, 4)
            plan = random_shard_plan(
                graph, num_shards=4, num_events=25, seed=seed
            )
            report = run_service_plan(graph, plan, replication=2)
            assert report.ok, report.violations
            assert report.queries > 0
            # the metrics snapshot covers plan queries and probes alike
            assert report.metrics["queries"] == report.queries

    def test_unreplicated_outage_degrades_not_lies(self):
        graph = cycle_graph(12)
        plan = (
            FaultPlan(seed=9, name="unreplicated outage")
            .shard_down(0)
            .query(0, 6)
            .query(1, 7)
            .shard_recover(0)
            .advance(600.0)
        )
        report = run_service_plan(
            graph, plan, num_shards=3, replication=1
        )
        assert report.ok, report.violations
        assert report.degraded_answers >= 1

    def test_runner_rejects_network_events(self):
        graph = grid_graph(4, 4)
        plan = FaultPlan(seed=1).fail_vertex(3)
        report = run_service_plan(graph, plan)
        assert not report.ok
        assert "not a serving-tier event" in report.violations[0]

    def test_report_summary_mentions_counts(self):
        graph = grid_graph(4, 4)
        plan = random_shard_plan(graph, seed=6, num_events=20)
        report = run_service_plan(graph, plan)
        text = report.summary()
        assert "queries" in text and "breaker trips" in text


@pytest.mark.chaos
class TestServiceAcceptanceBattery:
    """ISSUE acceptance: 20 seeded schedules, zero invariant violations."""

    def test_standard_suite_clean(self):
        reports = service_standard_suite(num_schedules=20, num_events=60,
                                         seed=0)
        assert len(reports) == 20
        violations = [v for r in reports for v in r.violations]
        assert violations == []
        # the battery must actually exercise both outcomes and recovery
        assert sum(r.degraded_answers for r in reports) > 0
        assert sum(r.exact_answers for r in reports) > 0
        assert all(r.queries > 0 for r in reports)
