"""Property-based tests for the network recovery simulator."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.components import is_connected
from repro.graphs.generators import random_tree
from repro.routing.network_sim import NetworkSimulator


def random_connected_graph(n, extra_edges, seed):
    g = random_tree(n, seed)
    rng = random.Random(seed ^ 0xD00D)
    for _ in range(extra_edges):
        a, b = rng.sample(range(n), 2)
        if not g.has_edge(a, b):
            g.add_edge(a, b)
    return g


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_delivery_matches_reachability(data):
    """A packet is delivered iff the endpoints are connected in truth,
    and a delivered route never touches a truly failed element."""
    n = data.draw(st.integers(6, 22), label="n")
    seed = data.draw(st.integers(0, 10**6), label="seed")
    graph = random_connected_graph(n, n // 2, seed)
    rng = random.Random(seed)
    s, t = rng.sample(range(n), 2)
    candidates = [v for v in range(n) if v not in (s, t)]
    failed = rng.sample(candidates, min(2, len(candidates)))
    silent = data.draw(st.booleans(), label="silent")

    sim = NetworkSimulator(graph, probe_on_failure=not silent)
    for v in failed:
        sim.fail_vertex(v)

    survivor = graph.subgraph_without(removed_vertices=failed)
    reachable = t in __import__(
        "repro.graphs.traversal", fromlist=["bfs_distances"]
    ).bfs_distances(survivor, s)

    report = sim.send_packet(s, t)
    assert report.delivered == reachable
    if report.delivered:
        assert not set(report.route) & set(failed)
        for a, b in zip(report.route, report.route[1:]):
            assert graph.has_edge(a, b)


@settings(max_examples=15, deadline=None)
@given(st.integers(6, 24), st.integers(0, 10**6))
def test_flooding_stabilizes(n, seed):
    """After enough flooding rounds knowledge reaches a fixed point, and
    when the survivor graph is connected the fixed point is full awareness."""
    graph = random_connected_graph(n, 2, seed)
    rng = random.Random(seed)
    failed = rng.sample(range(n), min(2, n - 2))
    sim = NetworkSimulator(graph)
    for v in failed:
        sim.fail_vertex(v)
    sim.propagate(rounds=n)
    assert sim.propagate(rounds=1) == 0  # fixed point reached
    survivor = graph.subgraph_without(removed_vertices=failed)
    live = [v for v in range(n) if v not in failed]
    survivor_live_connected = is_connected(_induced_on_live(survivor, live))
    # flooding can only spread facts some live router initially learned:
    # a failed vertex whose neighbors all failed too is never discovered
    every_fault_witnessed = all(
        any(u not in failed for u in graph.neighbors(f)) for f in failed
    )
    if survivor_live_connected and every_fault_witnessed:
        assert sim.awareness() == 1.0


def _induced_on_live(graph, live):
    """The survivor graph restricted to live vertices (re-indexed)."""
    from repro.graphs import Graph

    index = {v: i for i, v in enumerate(live)}
    g = Graph(len(live))
    for u, v in graph.edges():
        if u in index and v in index:
            g.add_edge(index[u], index[v])
    return g
