"""Tests for scenario compilation and full-stack replay."""

import pytest

from repro.chaos.plan import FaultPlan
from repro.exceptions import ScenarioError
from repro.obs import Registry, render_prometheus
from repro.scenario import (
    ScenarioEvent,
    ScenarioTrace,
    TraceTenant,
    catalogue,
    compile_trace,
    load_scenario,
    parse_trace,
    run_trace,
    scenario_paths,
    serialize_trace,
)
from repro.scenario.compile import PROBE_TENANT


def small_trace(**overrides) -> ScenarioTrace:
    values = dict(
        name="small",
        graph_spec="grid:5x5",
        duration_ms=200.0,
        seed=3,
        base_rate_per_ms=0.3,
        window_ms=50.0,
        events=(
            ScenarioEvent(at_ms=40.0, kind="ball_outage", center=12,
                          radius=1, duration_ms=80.0),
            ScenarioEvent(at_ms=60.0, kind="probe", s=0, t=24,
                          faults=(12,)),
            ScenarioEvent(at_ms=100.0, kind="shard_down", shard=0),
            ScenarioEvent(at_ms=150.0, kind="shard_recover", shard=0),
        ),
    )
    values.update(overrides)
    return ScenarioTrace(**values)


class TestCompile:
    def test_outage_resolves_ball(self):
        compiled = compile_trace(small_trace())
        (window,) = compiled.outages
        assert 12 in window.vertices
        assert set(window.vertices) == {7, 11, 12, 13, 17}

    def test_flash_crowd_tiles_duration(self):
        trace = small_trace(events=(
            ScenarioEvent(at_ms=50.0, kind="flash_crowd", multiplier=3.0,
                          duration_ms=60.0),
        ))
        compiled = compile_trace(trace)
        phases = compiled.traffic.phases
        assert [p.duration_ms for p in phases] == [50.0, 60.0, 90.0]
        assert [p.rate_multiplier for p in phases] == [1.0, 3.0, 1.0]

    def test_overlapping_flash_crowds_rejected(self):
        trace_events = (
            ScenarioEvent(at_ms=50.0, kind="flash_crowd", multiplier=2.0,
                          duration_ms=100.0),
            ScenarioEvent(at_ms=100.0, kind="flash_crowd", multiplier=3.0,
                          duration_ms=50.0),
        )
        with pytest.raises(ScenarioError, match="overlap"):
            compile_trace(small_trace(events=trace_events))

    def test_maintenance_unrolls_to_rolling_windows(self):
        trace = small_trace(events=(
            ScenarioEvent(at_ms=20.0, kind="maintenance", shards=(0, 1),
                          window_ms=30.0),
        ))
        compiled = compile_trace(trace)
        rows = [(a.at_ms, a.event.kind, a.event.shard)
                for a in compiled.actions]
        assert rows == [
            (20.0, "shard_down", 0),
            (50.0, "shard_recover", 0),
            (50.0, "shard_down", 1),
            (80.0, "shard_recover", 1),
        ]

    def test_vertex_out_of_range_rejected(self):
        trace = small_trace(events=(
            ScenarioEvent(at_ms=10.0, kind="ball_outage", center=99,
                          radius=1, duration_ms=20.0),
        ))
        with pytest.raises(ScenarioError, match="outside the graph"):
            compile_trace(trace)

    def test_rollout_edge_must_exist(self):
        trace = small_trace(events=(
            ScenarioEvent(at_ms=10.0, kind="rollout_begin", edge=(0, 24)),
            ScenarioEvent(at_ms=20.0, kind="rollout_commit"),
        ))
        with pytest.raises(ScenarioError, match="not in the graph"):
            compile_trace(trace)

    def test_probe_tenant_reserved(self):
        trace = small_trace(tenants=(TraceTenant(PROBE_TENANT),))
        with pytest.raises(ScenarioError, match="reserved"):
            compile_trace(trace)

    def test_fault_plan_lowering_round_trips_as_json(self):
        plan = compile_trace(small_trace()).fault_plan()
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.to_json() == plan.to_json()
        kinds = {event.kind for event in plan.events}
        assert "query" in kinds  # probes + seeded in-window queries
        assert "shard_down" in kinds


class TestReplay:
    def test_replay_is_clean_and_judged(self):
        report = run_trace(small_trace())
        assert report.ok, report.violations
        assert report.submitted > 0
        assert report.probes == 1
        assert report.exact + report.degraded + report.shed \
            == report.submitted
        assert report.checks_performed >= report.submitted

    def test_replay_is_byte_deterministic(self):
        first = run_trace(small_trace())
        second = run_trace(small_trace())
        assert first.to_json() == second.to_json()
        assert first.fingerprint == second.fingerprint

    def test_seed_changes_the_replay(self):
        first = run_trace(small_trace())
        second = run_trace(small_trace().with_seed(4))
        assert first.to_json() != second.to_json()

    def test_windows_tile_the_duration(self):
        report = run_trace(small_trace())
        assert len(report.windows) == 4
        assert report.windows[0].start_ms == 0.0
        assert report.windows[-1].end_ms == 200.0
        assert sum(row.submitted for row in report.windows) \
            == report.submitted - report.shed + sum(
                row.shed for row in report.windows
            )

    def test_probe_detour_is_observed(self):
        # faults 11,12,13 wall off the middle row around the probe path
        trace = small_trace(events=(
            ScenarioEvent(at_ms=40.0, kind="outage", vertices=(11, 12, 13),
                          duration_ms=100.0),
            ScenarioEvent(at_ms=60.0, kind="probe", s=10, t=14,
                          faults=(11, 12, 13)),
        ))
        report = run_trace(trace)
        assert report.ok, report.violations
        # fault-free 10->14 is 4; the wall forces a detour of 8
        assert report.worst_detour == pytest.approx(2.0)

    def test_rollout_mid_replay_judged_per_version(self):
        trace = small_trace(events=(
            ScenarioEvent(at_ms=40.0, kind="rollout_begin", edge=(0, 1)),
            ScenarioEvent(at_ms=100.0, kind="rollout_commit"),
            ScenarioEvent(at_ms=150.0, kind="probe", s=0, t=24),
        ))
        report = run_trace(trace)
        assert report.ok, report.violations
        assert report.events_applied == 2

    def test_metrics_exported(self):
        obs = Registry()
        run_trace(small_trace(), obs=obs)
        text = render_prometheus(obs)
        assert "repro_scenario_availability" in text
        assert "repro_scenario_worst_detour" in text
        assert "repro_scenario_events_total" in text


class TestLibrary:
    def test_library_is_discoverable(self):
        paths = scenario_paths()
        assert len(paths) >= 6
        names = {path.stem for path in paths}
        assert {
            "regional-ball-outage", "cascading-double-ball",
            "rolling-maintenance", "flash-crowd-during-outage",
            "crash-storm-mid-rollout", "adversarial-found",
        } <= names

    def test_every_library_file_parses_and_compiles(self):
        for name, path, trace in catalogue():
            compiled = compile_trace(trace)
            assert compiled.trace.name == name

    def test_library_files_are_canonical_bytes(self):
        for path in scenario_paths():
            text = path.read_text(encoding="utf-8")
            assert serialize_trace(parse_trace(text)) == text, path

    def test_load_scenario_missing_file(self):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenario("/nonexistent/path.scenario")

    @pytest.mark.chaos
    def test_full_library_battery_replays_clean_and_deterministic(self):
        for name, path, trace in catalogue():
            first = run_trace(trace)
            assert first.ok, (name, first.violations)
            second = run_trace(trace)
            assert first.to_json() == second.to_json(), name
