"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_graph_spec


class TestGraphSpec:
    @pytest.mark.parametrize(
        "spec,n",
        [
            ("path:10", 10),
            ("cycle:12", 12),
            ("grid:3x4", 12),
            ("grid:2x2x2", 8),
            ("torus:3x4", 12),
            ("tree:20", 20),
            ("tree:20:5", 20),
            ("road:4x4", 16),
            ("cylinder:10x4", 40),
            ("king:3x2", 9),
            ("halfking:3x2", 9),
            ("hypercube:3", 8),
            ("sierpinski:2", 15),
            ("geometric:30:0.4", 30),
        ],
    )
    def test_valid_specs(self, spec, n):
        assert parse_graph_spec(spec).num_vertices == n

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            parse_graph_spec("klein:4")

    def test_malformed_params(self):
        with pytest.raises(SystemExit):
            parse_graph_spec("grid:axb")


class TestCommands:
    def test_build_info_query_roundtrip(self, tmp_path, capsys):
        db_path = str(tmp_path / "labels.fsdl")
        assert main(["build", "cycle:16", "-e", "1.0", "-o", db_path]) == 0
        assert main(["info", db_path]) == 0
        out = capsys.readouterr().out
        assert "labels:    16" in out

        assert main(["query", db_path, "-s", "0", "-t", "8"]) == 0
        out = capsys.readouterr().out
        assert "d(0, 8 | F) = 8" in out

        assert main(
            ["query", db_path, "-s", "0", "-t", "4", "--fail-vertex", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "= 12" in out  # the long way around C_16

    def test_query_unreachable(self, tmp_path, capsys):
        db_path = str(tmp_path / "labels.fsdl")
        main(["build", "path:8", "-o", db_path])
        capsys.readouterr()
        assert main(["query", db_path, "-s", "0", "-t", "7",
                     "--fail-vertex", "4"]) == 0
        assert "unreachable" in capsys.readouterr().out

    def test_query_edge_fault_syntax(self, tmp_path, capsys):
        db_path = str(tmp_path / "labels.fsdl")
        main(["build", "path:6", "-o", db_path])
        capsys.readouterr()
        assert main(["query", db_path, "-s", "0", "-t", "5",
                     "--fail-edge", "2-3"]) == 0
        assert "unreachable" in capsys.readouterr().out

    def test_bad_edge_syntax(self, tmp_path):
        db_path = str(tmp_path / "labels.fsdl")
        main(["build", "path:6", "-o", db_path])
        with pytest.raises(SystemExit):
            main(["query", db_path, "-s", "0", "-t", "5", "--fail-edge", "2:3"])

    def test_verify_command(self, capsys):
        assert main(["verify", "grid:4x4", "-e", "2.0"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_unit_mode(self, capsys):
        assert main(["verify", "cycle:16", "--low-level", "unit"]) == 0

    def test_experiment_command(self, capsys):
        assert main(["experiment", "E9"]) == 0
        assert "Theorem 3.1" in capsys.readouterr().out

    def test_build_unit_mode(self, tmp_path, capsys):
        db_path = str(tmp_path / "labels.fsdl")
        assert main(
            ["build", "grid:5x5", "--low-level", "unit", "-o", db_path]
        ) == 0

    def test_build_legacy_format_roundtrip(self, tmp_path, capsys):
        db_path = str(tmp_path / "legacy.fsdl")
        assert main(
            ["build", "cycle:12", "-o", db_path, "--format-version", "1"]
        ) == 0
        capsys.readouterr()
        assert main(["info", db_path]) == 0
        assert "format:    v1" in capsys.readouterr().out


class TestChaosCommands:
    def test_fsck_healthy_database(self, tmp_path, capsys):
        db_path = str(tmp_path / "labels.fsdl")
        main(["build", "cycle:12", "-o", db_path])
        capsys.readouterr()
        assert main(["fsck", db_path]) == 0
        assert "integrity: OK" in capsys.readouterr().out

    def test_fsck_flags_corruption(self, tmp_path, capsys):
        db_path = tmp_path / "labels.fsdl"
        main(["build", "cycle:12", "-o", str(db_path)])
        blob = bytearray(db_path.read_bytes())
        blob[-1] ^= 0xFF  # inside the last label's payload
        db_path.write_bytes(bytes(blob))
        capsys.readouterr()
        assert main(["fsck", str(db_path)]) == 1
        out = capsys.readouterr().out
        assert "corrupt label" in out

    def test_chaos_command_on_spec(self, capsys):
        assert main(
            ["chaos", "cycle:16", "--schedules", "1", "--events", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 invariant violation(s)" in out

    def test_serve_chaos_command_on_spec(self, capsys):
        assert main(
            ["serve-chaos", "grid:4x4", "--schedules", "1", "--events", "20",
             "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 invariant violation(s)" in out
        assert "breaker trips" in out

    def test_serve_chaos_no_hedging(self, capsys):
        assert main(
            ["serve-chaos", "cycle:16", "--schedules", "1", "--events", "15",
             "--shards", "3", "--replication", "1", "--no-hedging"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 hedges" in out


class TestObsCommands:
    def test_metrics_prometheus_output(self, capsys):
        assert main(["metrics", "--schedules", "2", "--events", "20"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in out
        assert "repro_chaos_events_total{" in out
        assert "repro_query_latency_ms_bucket{" in out

    def test_metrics_json_is_deterministic(self, capsys):
        import json

        argv = ["metrics", "--schedules", "2", "--events", "20",
                "--format", "json"]
        assert main(argv) == 0
        one = capsys.readouterr().out
        assert main(argv) == 0
        two = capsys.readouterr().out
        assert one == two
        payload = json.loads(one)
        names = {series["name"] for series in payload["metrics"]}
        assert "repro_queries_total" in names

    def test_trace_text_shows_span_tree(self, tmp_path, capsys):
        db_path = str(tmp_path / "labels.fsdl")
        main(["build", "grid:4x4", "-o", db_path])
        capsys.readouterr()
        assert main(
            ["trace", db_path, "-s", "0", "-t", "15", "--fail-vertex", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "decode" in out
        assert "decode.dijkstra" in out
        assert "nodes_settled=" in out

    def test_trace_json_round_trips(self, tmp_path, capsys):
        import json

        db_path = str(tmp_path / "labels.fsdl")
        main(["build", "cycle:12", "-o", db_path])
        capsys.readouterr()
        assert main(
            ["trace", db_path, "-s", "0", "-t", "6", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [span["name"] for span in payload["spans"]]
        assert "decode" in names
        assert "decode.dijkstra" in names

    def test_bench_emits_artifact(self, tmp_path, capsys):
        import json

        emit = str(tmp_path / "BENCH.json")
        assert main(
            ["bench", "--queries", "10", "--repeats", "1", "--emit", emit]
        ) == 0
        capsys.readouterr()
        with open(emit, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["bench"] == "obs_decode_overhead"
        assert payload["deterministic"]["decode_spans"] == 10


class TestTrafficCommand:
    def test_traffic_prom_output_and_summary(self, capsys):
        argv = ["traffic", "--seed", "1", "--duration-ms", "120"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "repro_traffic_shed_rate" in out
        assert "repro_gateway_requests_total{" in out
        assert "# traffic battery seed=1: OK" in out

    def test_traffic_json_is_deterministic(self, capsys):
        import json

        argv = ["traffic", "--seed", "2", "--duration-ms", "120",
                "--format", "json"]
        assert main(argv) == 0
        one = capsys.readouterr().out
        assert main(argv) == 0
        two = capsys.readouterr().out
        assert one == two
        payload = json.loads(one)
        assert payload["ok"] is True
        assert payload["submitted"] > 0


class TestScenarioCommands:
    def test_list_names_every_library_scenario(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "regional-ball-outage" in out
        assert "adversarial-found" in out

    def test_validate_library_is_clean(self, capsys):
        assert main(["scenario", "validate"]) == 0
        out = capsys.readouterr().out
        assert "FAIL" not in out
        assert out.count("OK ") >= 6

    def test_validate_corrupted_file_fails(self, tmp_path, capsys):
        from repro.scenario import scenario_paths

        good = scenario_paths()[0].read_text(encoding="utf-8")
        bad_path = tmp_path / "bad.scenario"
        bad_path.write_text(good.replace("crc ", "crc 0"), encoding="utf-8")
        assert main(["scenario", "validate", str(bad_path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_run_text_report(self, capsys):
        from repro.scenario import scenario_paths

        path = next(
            p for p in scenario_paths() if p.stem == "rolling-maintenance"
        )
        assert main(["scenario", "run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "detour" in out

    def test_run_json_is_deterministic(self, capsys):
        import json

        from repro.scenario import scenario_paths

        path = next(
            p for p in scenario_paths() if p.stem == "rolling-maintenance"
        )
        argv = ["scenario", "run", str(path), "--format", "json"]
        assert main(argv) == 0
        one = capsys.readouterr().out
        assert main(argv) == 0
        two = capsys.readouterr().out
        assert one == two
        payload = json.loads(one)
        assert payload["ok"] is True

    def test_search_emits_a_replayable_trace(self, tmp_path, capsys):
        emitted = str(tmp_path / "found.scenario")
        argv = ["scenario", "search", "grid:6x6", "--budget", "2",
                "--seed", "5", "--emit", emitted]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "detour" in out
        assert main(["scenario", "validate", emitted]) == 0
        assert main(["scenario", "run", emitted]) == 0
