"""Golden-trace regression test for the observed serve-chaos battery.

The observability layer promises *bit-determinism*: a seeded chaos
battery with every hook live must export byte-identical metrics JSON
on every run, on every host.  ``tests/golden/serve_chaos_metrics.json``
pins one such export; any drift in event scheduling, retry policy,
metric arithmetic or exporter rendering shows up here as a readable
JSON diff instead of a silent behavior change.

Updating the golden (only after deliberately changing observed
behavior — never to paper over nondeterminism):

    PYTHONPATH=src python - <<'EOF'
    from repro.obs.harness import battery_metrics_json
    text = battery_metrics_json(num_schedules=4, num_events=30, seed=0)
    with open("tests/golden/serve_chaos_metrics.json", "w") as fh:
        fh.write(text + "\n")
    EOF

then inspect the diff and explain it in the commit message.  The same
recipe is documented in docs/observability.md.
"""

import json
from pathlib import Path

import pytest

from repro.obs.harness import battery_metrics_json, observed_service_battery

GOLDEN_PATH = Path(__file__).parent / "golden" / "serve_chaos_metrics.json"

GOLDEN_SCHEDULES = 4
GOLDEN_EVENTS = 30
GOLDEN_SEED = 0


def golden_export() -> str:
    return battery_metrics_json(
        num_schedules=GOLDEN_SCHEDULES,
        num_events=GOLDEN_EVENTS,
        seed=GOLDEN_SEED,
    )


def test_export_matches_committed_golden():
    fresh = golden_export()
    committed = GOLDEN_PATH.read_text(encoding="utf-8").rstrip("\n")
    if fresh != committed:
        fresh_obj = json.loads(fresh)
        committed_obj = json.loads(committed)
        fresh_names = set(fresh_obj["metrics"])
        committed_names = set(committed_obj["metrics"])
        pytest.fail(
            "metrics export drifted from tests/golden/serve_chaos_metrics.json"
            f" (added: {sorted(fresh_names - committed_names)},"
            f" removed: {sorted(committed_names - fresh_names)},"
            " changed values: diff the file; update path in module docstring)"
        )


def test_golden_battery_is_clean():
    registry, reports = observed_service_battery(
        num_schedules=GOLDEN_SCHEDULES,
        num_events=GOLDEN_EVENTS,
        seed=GOLDEN_SEED,
    )
    assert all(not report.violations for report in reports)
    assert registry.total("repro_queries_total") > 0
    assert registry.total("repro_chaos_violations_total") == 0


def test_acceptance_battery_bit_identical_across_runs():
    """ISSUE 5 acceptance: the full 20-schedule battery, run twice,
    exports byte-identical metrics JSON."""
    one = battery_metrics_json(num_schedules=20, num_events=60, seed=0)
    two = battery_metrics_json(num_schedules=20, num_events=60, seed=0)
    assert one == two
