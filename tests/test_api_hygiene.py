"""Meta-tests: public-API hygiene (docstrings everywhere, exports resolve)."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "._" in info.name or info.name.endswith("__main__"):
            continue
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = _public_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_") or inspect.ismodule(obj):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(obj):
                for member_name, member in vars(obj).items():
                    if member_name.startswith("_"):
                        continue
                    func = member
                    if isinstance(member, (classmethod, staticmethod)):
                        func = member.__func__
                    elif isinstance(member, property):
                        func = member.fget
                    if inspect.isfunction(func) and not (
                        func.__doc__ and func.__doc__.strip()
                    ):
                        undocumented.append(f"{name}.{member_name}")
    assert not undocumented, f"{module.__name__}: {undocumented}"


@pytest.mark.parametrize(
    "module",
    [m for m in MODULES if hasattr(m, "__all__")],
    ids=lambda m: m.__name__,
)
def test_all_exports_resolve(module):
    for name in module.__all__:
        assert hasattr(module, name), f"{module.__name__}.__all__: {name}"


def test_version_defined():
    assert repro.__version__
