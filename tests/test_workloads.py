"""Tests for workload generators."""

from repro.graphs import shortest_path
from repro.graphs.generators import cycle_graph, grid_graph, path_graph
from repro.workloads import (
    adversarial_queries,
    clustered_fault_queries,
    random_queries,
    road_closure_scenario,
)


class TestRandomQueries:
    def test_counts_and_validity(self):
        g = grid_graph(6, 6)
        queries = random_queries(g, 25, max_vertex_faults=3, max_edge_faults=2, seed=1)
        assert len(queries) == 25
        for q in queries:
            assert q.s != q.t
            assert q.s not in q.vertex_faults and q.t not in q.vertex_faults
            for a, b in q.edge_faults:
                assert g.has_edge(a, b)

    def test_deterministic(self):
        g = cycle_graph(12)
        assert random_queries(g, 10, seed=7) == random_queries(g, 10, seed=7)

    def test_num_faults(self):
        g = path_graph(10)
        queries = random_queries(g, 10, max_vertex_faults=2, max_edge_faults=1, seed=2)
        assert all(q.num_faults <= 3 for q in queries)


class TestAdversarialQueries:
    def test_faults_on_shortest_path(self):
        g = grid_graph(7, 7)
        queries = adversarial_queries(g, 15, faults_per_query=2, seed=3)
        assert queries
        for q in queries:
            path = shortest_path(g, q.s, q.t)
            # every fault must lie on *a* shortest path interior; our
            # generator picked it from one concrete path, so verify via
            # the distance identity
            from repro.graphs import bfs_distances

            d_st = bfs_distances(g, q.s)[q.t]
            for f in q.vertex_faults:
                d_sf = bfs_distances(g, q.s)[f]
                d_ft = bfs_distances(g, f)[q.t]
                assert d_sf + d_ft == d_st

    def test_skips_too_close_pairs(self):
        g = path_graph(3)  # all pairs have path length <= 2: no interior >= 2
        assert adversarial_queries(g, 5, seed=0) == []


class TestClusteredQueries:
    def test_cluster_is_ball(self):
        g = grid_graph(8, 8)
        queries = clustered_fault_queries(g, 10, cluster_radius=1, seed=4)
        from repro.graphs import bfs_distances

        for q in queries:
            faults = set(q.vertex_faults)
            # some center must dominate the cluster within the radius
            assert any(
                faults == set(bfs_distances(g, center, radius=1))
                for center in faults
            )

    def test_endpoints_outside_cluster(self):
        g = grid_graph(8, 8)
        for q in clustered_fault_queries(g, 10, cluster_radius=2, seed=5):
            assert q.s not in q.vertex_faults and q.t not in q.vertex_faults


class TestScenario:
    def test_event_mix_and_bounds(self):
        g = grid_graph(6, 6)
        events = road_closure_scenario(g, num_events=80, seed=6)
        assert len(events) == 80
        open_closures = set()
        kinds = set()
        for event in events:
            kinds.add(event.kind)
            if event.kind == "close_edge":
                assert event.edge not in open_closures
                open_closures.add(event.edge)
                assert len(open_closures) <= 6
            elif event.kind == "reopen_edge":
                assert event.edge in open_closures
                open_closures.discard(event.edge)
            else:
                assert event.kind == "query"
                assert event.s != event.t
        assert "query" in kinds and "close_edge" in kinds

    def test_deterministic(self):
        g = cycle_graph(10)
        assert road_closure_scenario(g, 30, seed=1) == road_closure_scenario(
            g, 30, seed=1
        )
