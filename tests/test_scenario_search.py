"""Tests for the adversarial worst-F search."""

import pytest

from repro.exceptions import ScenarioError
from repro.scenario import (
    parse_trace,
    run_trace,
    serialize_trace,
    worst_f_search,
)


class TestStretchObjective:
    def test_search_beats_the_random_baseline_on_the_grid(self):
        # the acceptance case: adversarially placed faults force a
        # strictly worse observed detour than uniform random plans
        result = worst_f_search(
            "grid:8x8", objective="stretch", budget=3, seed=0
        )
        assert result.faults
        assert result.best_value > result.baseline_value
        assert result.best_value > 1.0

    def test_worst_pairs_are_decoded_observations(self):
        result = worst_f_search(
            "grid:8x8", objective="stretch", budget=3, seed=0
        )
        for pair in result.worst_pairs:
            # soundness sandwich: the decoder never undershoots truth
            assert pair.decoded >= pair.true
            assert pair.stretch == pytest.approx(
                pair.decoded / pair.baseline
            )
        assert result.worst_pairs[0].stretch == pytest.approx(
            result.best_value
        )

    def test_deterministic_in_seed(self):
        first = worst_f_search(
            "grid:6x6", objective="stretch", budget=2, seed=5
        )
        second = worst_f_search(
            "grid:6x6", objective="stretch", budget=2, seed=5
        )
        assert first.faults == second.faults
        assert first.best_value == second.best_value
        assert serialize_trace(first.trace) == serialize_trace(second.trace)

    def test_emitted_trace_is_replayable_and_reproduces_the_detour(self):
        result = worst_f_search(
            "grid:8x8", objective="stretch", budget=3, seed=0
        )
        text = serialize_trace(result.trace)
        report = run_trace(parse_trace(text))
        assert report.ok, report.violations
        # the replay's probes observe the detour the search promised
        assert report.worst_detour == pytest.approx(result.best_value)


class TestDegradedObjective:
    def test_targeted_shard_outage_degrades_queries(self):
        result = worst_f_search(
            "grid:5x5", objective="degraded", budget=2, seed=1,
            baseline_trials=6, restarts=0,
        )
        assert 0.0 <= result.best_value <= 1.0
        assert result.best_value >= result.baseline_value

    def test_witness_trace_pins_the_down_shards(self):
        result = worst_f_search(
            "grid:5x5", objective="degraded", budget=2, seed=1,
            baseline_trials=6, restarts=0,
        )
        kinds = [event.kind for event in result.trace.events]
        assert "shard_down" in kinds
        assert result.trace.replication == 1


class TestSearchValidation:
    def test_unknown_objective(self):
        with pytest.raises(ScenarioError, match="unknown search objective"):
            worst_f_search("grid:4x4", objective="latency")

    def test_bad_budget(self):
        with pytest.raises(ScenarioError, match="budget"):
            worst_f_search("grid:4x4", budget=0)

    def test_bad_graph_spec(self):
        with pytest.raises(ScenarioError, match="graph"):
            worst_f_search("klein:4")
