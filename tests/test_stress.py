"""Stress and failure-injection tests: large fault sets, degenerate inputs,
duplicate/overlapping faults, and hostile fault geometry."""

import math

import pytest

from repro.baselines import ExactRecomputeOracle
from repro.exceptions import QueryError
from repro.graphs import Graph
from repro.graphs.generators import (
    caterpillar,
    complete_graph,
    cycle_graph,
    grid_graph,
    grid_with_obstacles,
    hypercube_graph,
    star_graph,
)
from repro.labeling import FaultSet, ForbiddenSetLabeling, decode_distance


def sandwich(graph, scheme, s, t, vf=(), ef=()):
    exact = ExactRecomputeOracle(graph)
    d_true = exact.query(s, t, vertex_faults=vf, edge_faults=ef)
    d_hat = scheme.query(s, t, vertex_faults=vf, edge_faults=ef).distance
    if math.isinf(d_true):
        assert math.isinf(d_hat)
    else:
        assert d_true <= d_hat <= scheme.stretch_bound() * d_true + 1e-9
    return d_true, d_hat


class TestMassiveFaultSets:
    def test_third_of_grid_forbidden(self):
        g = grid_graph(7, 7)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        faults = [v for v in range(49) if v % 3 == 1 and v not in (0, 48)]
        sandwich(g, scheme, 0, 48, vf=faults)

    def test_everywhere_failure(self):
        """F = V \\ {s, t}: the reconstruction-attack workload."""
        g = cycle_graph(12)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        for s, t in [(0, 1), (0, 6), (3, 4)]:
            faults = [v for v in range(12) if v not in (s, t)]
            d_true, d_hat = sandwich(g, scheme, s, t, vf=faults)
            assert math.isinf(d_true) == (not g.has_edge(s, t))

    def test_all_edges_but_one_forbidden(self):
        g = cycle_graph(8)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        edges = list(g.edges())
        keep = (0, 1)
        faults = [e for e in edges if e != keep]
        sandwich(g, scheme, 0, 1, ef=faults)
        assert scheme.query(0, 1, edge_faults=faults).distance == 1

    def test_half_the_cycle_fails(self):
        g = cycle_graph(40)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        faults = list(range(2, 19))
        sandwich(g, scheme, 0, 20, vf=faults)


class TestOverlappingFaults:
    def test_duplicate_vertex_fault(self):
        g = grid_graph(5, 5)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        once = scheme.query(0, 24, vertex_faults=[12]).distance
        twice = scheme.query(0, 24, vertex_faults=[12, 12]).distance
        assert once == twice

    def test_edge_fault_incident_to_vertex_fault(self):
        g = grid_graph(5, 5)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        sandwich(g, scheme, 0, 24, vf=[12], ef=[(12, 13)])

    def test_two_edge_faults_sharing_endpoint(self):
        g = grid_graph(5, 5)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        sandwich(g, scheme, 0, 24, ef=[(12, 13), (12, 11)])

    def test_fault_adjacent_to_source(self):
        g = grid_graph(5, 5)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        sandwich(g, scheme, 0, 24, vf=list(set(g.neighbors(0)) - {24}))

    def test_fault_adjacent_to_target(self):
        g = grid_graph(5, 5)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        ring = [v for v in g.neighbors(24)]
        assert math.isinf(scheme.query(0, 24, vertex_faults=ring).distance)


class TestHostileTopologies:
    def test_star_all_queries(self):
        g = star_graph(8)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        sandwich(g, scheme, 1, 2)
        sandwich(g, scheme, 1, 2, vf=[3, 4])
        assert math.isinf(scheme.query(1, 2, vertex_faults=[0]).distance)

    def test_complete_graph(self):
        g = complete_graph(10)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        sandwich(g, scheme, 0, 9, vf=[1, 2, 3, 4])
        assert scheme.query(0, 9, vertex_faults=[1, 2, 3]).distance == 1

    def test_hypercube(self):
        g = hypercube_graph(5)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        sandwich(g, scheme, 0, 31, vf=[1, 2, 4])

    def test_caterpillar_leg_faults(self):
        g = caterpillar(8, 2)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        # legs of spine vertex 3 are ids 8 + 3*2, 8 + 3*2 + 1
        sandwich(g, scheme, 8, 23, vf=[3])

    def test_obstacle_grid(self):
        g = grid_with_obstacles(8, 8, [(2, 2, 5, 5)])
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        sandwich(g, scheme, 0, 63, vf=[8])

    def test_two_vertex_graph(self):
        g = Graph(2)
        g.add_edge(0, 1)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        assert scheme.query(0, 1).distance == 1
        assert math.isinf(scheme.query(0, 1, edge_faults=[(0, 1)]).distance)

    def test_tiny_epsilon(self):
        g = cycle_graph(16)
        scheme = ForbiddenSetLabeling(g, epsilon=0.05)
        sandwich(g, scheme, 0, 8, vf=[4])


class TestDegenerateQueries:
    def test_empty_fault_set_object(self):
        g = cycle_graph(8)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        result = decode_distance(scheme.label(0), scheme.label(4), FaultSet())
        assert result.distance == 4

    def test_none_fault_set(self):
        g = cycle_graph(8)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        assert decode_distance(scheme.label(0), scheme.label(4)).distance == 4

    def test_fault_label_of_endpoint_rejected(self):
        g = cycle_graph(8)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        faults = FaultSet(vertex_labels=[scheme.label(0)])
        with pytest.raises(QueryError):
            decode_distance(scheme.label(0), scheme.label(4), faults)
