"""Cross-component integration tests.

These exercise whole pipelines: the same instance served through the
live scheme, the serialized oracle, the on-disk database and the router
must agree; construction must be deterministic; the distributed model
must hold end-to-end (decoder works from bytes shipped over a "wire").
"""

import io
import math

import pytest

from repro.baselines import ExactRecomputeOracle
from repro.connectivity import ForbiddenSetConnectivityLabeling
from repro.graphs.generators import grid_graph, road_like_graph
from repro.labeling import ForbiddenSetLabeling, encode_label
from repro.oracle import DynamicDistanceOracle, ForbiddenSetDistanceOracle
from repro.oracle.persistence import LabelDatabase, save_labels
from repro.routing import ForbiddenSetRouting
from repro.workloads import random_queries


@pytest.fixture(scope="module")
def instance():
    graph = road_like_graph(8, 8, removal_fraction=0.1, seed=9)
    return graph, random_queries(
        graph, 20, max_vertex_faults=3, max_edge_faults=1, seed=9
    )


class TestAllFrontendsAgree:
    def test_scheme_oracle_database_consistency(self, instance):
        graph, queries = instance
        scheme = ForbiddenSetLabeling(graph, epsilon=1.0)
        oracle = ForbiddenSetDistanceOracle(graph, epsilon=1.0)
        buffer = io.BytesIO()
        save_labels(scheme, buffer)
        db = LabelDatabase.load(io.BytesIO(buffer.getvalue()))
        for q in queries:
            kwargs = dict(vertex_faults=q.vertex_faults, edge_faults=q.edge_faults)
            a = scheme.query(q.s, q.t, **kwargs).distance
            b = oracle.query(q.s, q.t, **kwargs).distance
            c = db.query(q.s, q.t, **kwargs).distance
            assert a == b == c

    def test_router_delivers_within_scheme_estimate(self, instance):
        graph, queries = instance
        router = ForbiddenSetRouting(graph, epsilon=1.0)
        exact = ExactRecomputeOracle(graph)
        for q in queries:
            kwargs = dict(vertex_faults=q.vertex_faults, edge_faults=q.edge_faults)
            d_true = exact.query(q.s, q.t, **kwargs)
            if math.isinf(d_true):
                continue
            estimate = router.labeling.query(q.s, q.t, **kwargs)
            result = router.route(q.s, q.t, **kwargs)
            # delivery is at least as good as the plan promised
            assert result.hops <= estimate.distance

    def test_connectivity_scheme_agrees_with_distance_scheme(self, instance):
        graph, queries = instance
        conn = ForbiddenSetConnectivityLabeling(graph)
        dist = ForbiddenSetLabeling(graph, epsilon=1.0)
        for q in queries:
            kwargs = dict(vertex_faults=q.vertex_faults, edge_faults=q.edge_faults)
            assert conn.connected(q.s, q.t, **kwargs) == (
                not math.isinf(dist.query(q.s, q.t, **kwargs).distance)
            )

    def test_dynamic_oracle_tracks_incremental_deletions(self, instance):
        graph, _ = instance
        dyn = DynamicDistanceOracle(graph, epsilon=1.0, rebuild_threshold=2)
        exact = ExactRecomputeOracle(graph)
        deleted = []
        for v in (20, 33, 41):
            dyn.delete_vertex(v)
            deleted.append(v)
            d_true = exact.query(0, 63, vertex_faults=deleted)
            d_hat = dyn.query(0, 63)
            if math.isinf(d_true):
                assert math.isinf(d_hat)
            else:
                assert d_true <= d_hat <= 2 * d_true


class TestDeterminism:
    def test_two_builds_identical_bytes(self):
        graph = grid_graph(5, 5)
        first = ForbiddenSetLabeling(graph, epsilon=1.0)
        second = ForbiddenSetLabeling(graph, epsilon=1.0)
        for v in graph.vertices():
            assert encode_label(first.label(v)) == encode_label(second.label(v))

    def test_query_results_stable(self):
        graph = grid_graph(5, 5)
        scheme = ForbiddenSetLabeling(graph, epsilon=1.0)
        results = [
            scheme.query(0, 24, vertex_faults=[12]).distance for _ in range(3)
        ]
        assert len(set(results)) == 1


class TestDistributedModelEndToEnd:
    def test_query_over_simulated_wire(self, instance):
        """Labels produced on a 'server', shipped as bytes, decoded on a
        'client' with no graph access — the full distributed story."""
        from repro.labeling import FaultSet, decode_distance, decode_label

        graph, queries = instance
        scheme = ForbiddenSetLabeling(graph, epsilon=1.0)
        exact = ExactRecomputeOracle(graph)

        def ship(v: int) -> bytes:
            return encode_label(scheme.label(v))

        for q in queries[:8]:
            faults = FaultSet(
                vertex_labels=[decode_label(ship(f)) for f in q.vertex_faults],
                edge_labels=[
                    (decode_label(ship(a)), decode_label(ship(b)))
                    for a, b in q.edge_faults
                ],
            )
            result = decode_distance(
                decode_label(ship(q.s)), decode_label(ship(q.t)), faults
            )
            d_true = exact.query(
                q.s, q.t, vertex_faults=q.vertex_faults, edge_faults=q.edge_faults
            )
            if math.isinf(d_true):
                assert math.isinf(result.distance)
            else:
                assert d_true <= result.distance <= 2 * d_true
