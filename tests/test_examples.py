"""Smoke tests: every example script must run cleanly."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example narrates what it does


def test_examples_exist():
    assert len(EXAMPLES) >= 4
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
