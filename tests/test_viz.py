"""Tests for the ASCII grid renderer."""

import pytest

from repro.analysis.viz import render_grid, route_summary
from repro.exceptions import GraphError


class TestRenderGrid:
    def test_basic_markers(self):
        art = render_grid(3, 3, source=0, target=8, faults=[4], route=[0, 1, 2, 5, 8])
        lines = art.splitlines()
        assert len(lines) == 3 + 2  # rows + blank + legend
        body = "\n".join(lines[:3])
        assert "S" in body and "T" in body and "X" in body and "o" in body

    def test_marker_priority(self):
        # a vertex that is both on the route and faulty renders as fault
        art = render_grid(2, 2, faults=[1], route=[1])
        body = art.splitlines()[:2]
        assert sum(row.count("X") for row in body) == 1
        assert all("o" not in row for row in body)

    def test_geometry(self):
        # source at (0,0) must be bottom-left: last body row, first cell
        art = render_grid(3, 2, source=0)
        body = art.splitlines()[:2]
        assert body[1][0] == "S"

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            render_grid(2, 2, faults=[9])

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphError):
            render_grid(0, 3)

    def test_highlight(self):
        art = render_grid(2, 2, highlight=[3])
        assert "+" in art


def test_route_summary():
    assert route_summary([0, 1], 2, 2) == "(0,0) -> (0,1)"
