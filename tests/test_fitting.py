"""Tests for the growth-law fitting helpers."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fitting import (
    fit_exponential,
    fit_polylog,
    fit_power_law,
    r_squared,
)


class TestPowerLaw:
    def test_exact_quadratic(self):
        xs = [1, 2, 4, 8, 16]
        ys = [3 * x * x for x in xs]
        a, k = fit_power_law(xs, ys)
        assert a == pytest.approx(3, rel=1e-9)
        assert k == pytest.approx(2, rel=1e-9)

    def test_noisy_linear(self):
        rng = random.Random(0)
        xs = [float(x) for x in range(1, 40)]
        ys = [5 * x * (1 + 0.01 * rng.uniform(-1, 1)) for x in xs]
        a, k = fit_power_law(xs, ys)
        assert k == pytest.approx(1, abs=0.05)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 3])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_power_law([2], [4])

    def test_rejects_constant_x(self):
        with pytest.raises(ValueError):
            fit_power_law([2, 2], [4, 5])


class TestPolylog:
    def test_exact_logsquared(self):
        xs = [4, 16, 64, 256, 1024]
        ys = [7 * math.log2(x) ** 2 for x in xs]
        a, k = fit_polylog(xs, ys)
        assert a == pytest.approx(7, rel=1e-9)
        assert k == pytest.approx(2, rel=1e-9)

    def test_rejects_small_x(self):
        with pytest.raises(ValueError):
            fit_polylog([1, 2], [1, 2])


class TestExponential:
    def test_exact_doubling(self):
        xs = [0, 1, 2, 3, 4]
        ys = [5 * 2**x for x in xs]
        a, b = fit_exponential(xs, ys)
        assert a == pytest.approx(5, rel=1e-9)
        assert b == pytest.approx(2, rel=1e-9)


class TestRSquared:
    def test_perfect_fit(self):
        xs = [1, 2, 3]
        ys = [2, 4, 6]
        assert r_squared(xs, ys, lambda x: 2 * x) == pytest.approx(1.0)

    def test_bad_fit_is_low(self):
        xs = [1, 2, 3, 4]
        ys = [1, 4, 9, 16]
        assert r_squared(xs, ys, lambda x: 0.0) < 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            r_squared([], [], lambda x: x)


@settings(max_examples=25, deadline=None)
@given(
    st.floats(0.1, 10),
    st.floats(0.2, 3),
    st.integers(4, 12),
)
def test_power_law_recovery_property(a, k, num_points):
    xs = [float(2**i) for i in range(1, num_points + 1)]
    ys = [a * x**k for x in xs]
    a_hat, k_hat = fit_power_law(xs, ys)
    assert a_hat == pytest.approx(a, rel=1e-6)
    assert k_hat == pytest.approx(k, rel=1e-6)


def test_fits_distinguish_shapes():
    """A log^2 n series is fit much better by polylog than power law."""
    xs = [float(2**i) for i in range(3, 14)]
    ys = [10 * math.log2(x) ** 2 for x in xs]
    a_pl, k_pl = fit_polylog(xs, ys)
    a_pw, k_pw = fit_power_law(xs, ys)
    r2_polylog = r_squared(xs, ys, lambda x: a_pl * math.log2(x) ** k_pl)
    r2_power = r_squared(xs, ys, lambda x: a_pw * x**k_pw)
    assert r2_polylog > r2_power
    assert k_pw < 0.6  # the power-law exponent collapses toward 0
