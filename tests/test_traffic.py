"""Tests for the seeded open-loop traffic generator.

The generator is the front half of the battery's bit-identity
guarantee: identical ``(graph, config, seed)`` triples must produce
identical request streams, and every structural promise the model
makes (Zipf popularity, phase modulation, burst locality, valid
endpoints) must hold on the stream it emits.
"""

import pytest

from repro.exceptions import QueryError
from repro.gateway import (
    FaultBurst,
    TenantProfile,
    TrafficConfig,
    TrafficGenerator,
    TrafficPhase,
    ZipfSampler,
    overload_mix,
)
from repro.graphs.generators import grid_graph
from repro.graphs.traversal import bfs_distances
from repro.util.rng import make_rng


def _grid():
    return grid_graph(8, 8)


class TestZipfSampler:
    def test_rejects_bad_parameters(self):
        with pytest.raises(QueryError):
            ZipfSampler(0)
        with pytest.raises(QueryError):
            ZipfSampler(10, exponent=-0.5)

    def test_hot_ranks_dominate(self):
        sampler = ZipfSampler(50, exponent=1.2, rng=make_rng(1))
        rng = make_rng(2)
        counts = [0] * 50
        for _ in range(4000):
            counts[sampler.rank_of(sampler.sample(rng))] += 1
        # rank 0 must clearly beat the tail, and the top 5 ranks
        # together must carry most of the mass
        assert counts[0] > counts[25]
        assert sum(counts[:5]) > 4000 * 0.5

    def test_permutation_is_seeded(self):
        a = ZipfSampler(30, rng=make_rng(7))
        b = ZipfSampler(30, rng=make_rng(7))
        c = ZipfSampler(30, rng=make_rng(8))
        ranks_a = [a.rank_of(v) for v in range(30)]
        ranks_b = [b.rank_of(v) for v in range(30)]
        ranks_c = [c.rank_of(v) for v in range(30)]
        assert ranks_a == ranks_b
        assert ranks_a != ranks_c


class TestTrafficValidation:
    def test_needs_a_tenant(self):
        with pytest.raises(QueryError):
            TrafficGenerator(_grid(), TrafficConfig(tenants=()), seed=0)

    def test_rate_must_be_positive(self):
        with pytest.raises(QueryError):
            TrafficGenerator(
                _grid(), TrafficConfig(base_rate_per_ms=0.0), seed=0
            )

    def test_tenant_weights_must_be_positive(self):
        # validation moved to construction time: the bad profile itself
        # fails loudly, before any generator sees it
        with pytest.raises(QueryError):
            TenantProfile("b", weight=0.0)

    def test_duration_must_be_positive(self):
        gen = TrafficGenerator(_grid(), TrafficConfig(), seed=0)
        with pytest.raises(QueryError):
            list(gen.arrivals(0.0))


class TestStreamInvariants:
    def test_same_seed_is_bit_identical(self):
        config = overload_mix()
        first = TrafficGenerator(_grid(), config, seed=11).generate(300.0)
        second = TrafficGenerator(_grid(), config, seed=11).generate(300.0)
        assert first == second
        assert len(first) > 0

    def test_different_seeds_differ(self):
        config = overload_mix()
        first = TrafficGenerator(_grid(), config, seed=11).generate(300.0)
        second = TrafficGenerator(_grid(), config, seed=12).generate(300.0)
        assert first != second

    def test_arrivals_are_time_ordered_within_window(self):
        gen = TrafficGenerator(_grid(), overload_mix(), seed=5)
        stream = gen.generate(500.0, start_ms=100.0)
        times = [timed.at_ms for timed in stream]
        assert times == sorted(times)
        assert all(100.0 <= at < 600.0 for at in times)

    def test_endpoints_are_valid_and_distinct(self):
        graph = _grid()
        gen = TrafficGenerator(graph, overload_mix(), seed=5)
        for timed in gen.generate(400.0):
            request = timed.request
            assert 0 <= request.s < graph.num_vertices
            assert 0 <= request.t < graph.num_vertices
            assert request.s != request.t
            assert request.s not in request.vertex_faults
            assert request.t not in request.vertex_faults

    def test_tenant_mix_tracks_weights(self):
        config = TrafficConfig(
            base_rate_per_ms=2.0,
            tenants=(
                TenantProfile("heavy", weight=4.0),
                TenantProfile("light", weight=1.0),
            ),
        )
        gen = TrafficGenerator(_grid(), config, seed=9)
        stream = gen.generate(2000.0)
        heavy = sum(1 for t in stream if t.request.tenant == "heavy")
        light = len(stream) - heavy
        assert heavy > 2.0 * light  # 4:1 expected; allow sampling noise

    def test_tenant_deadline_is_attached(self):
        config = TrafficConfig(
            base_rate_per_ms=1.0,
            tenants=(TenantProfile("fast", deadline_ms=100.0),),
        )
        gen = TrafficGenerator(_grid(), config, seed=3)
        stream = gen.generate(200.0)
        assert stream
        assert all(t.request.deadline_ms == 100.0 for t in stream)

    def test_user_ids_respect_population(self):
        config = TrafficConfig(
            base_rate_per_ms=1.0,
            tenants=(TenantProfile("small", num_users=10),),
        )
        gen = TrafficGenerator(_grid(), config, seed=3)
        stream = gen.generate(300.0)
        assert stream
        assert all(0 <= t.request.user_id < 10 for t in stream)


class TestPhases:
    def test_phase_multiplier_modulates_rate(self):
        quiet_then_rush = TrafficConfig(
            base_rate_per_ms=1.0,
            phases=(
                TrafficPhase(duration_ms=500.0, rate_multiplier=0.2),
                TrafficPhase(duration_ms=500.0, rate_multiplier=2.0),
            ),
        )
        gen = TrafficGenerator(_grid(), quiet_then_rush, seed=21)
        stream = gen.generate(1000.0)
        quiet = sum(1 for t in stream if t.at_ms < 500.0)
        rush = len(stream) - quiet
        # 10x rate ratio must show clearly even with Poisson noise
        assert rush > 3 * quiet

    def test_phases_cycle(self):
        config = TrafficConfig(
            base_rate_per_ms=1.0,
            phases=(
                TrafficPhase(duration_ms=100.0, rate_multiplier=0.1),
                TrafficPhase(duration_ms=100.0, rate_multiplier=3.0),
            ),
        )
        gen = TrafficGenerator(_grid(), config, seed=2)
        stream = gen.generate(800.0)
        # the second cycle's rush window (t in [300, 400)) must be busy
        second_rush = sum(1 for t in stream if 300.0 <= t.at_ms < 400.0)
        second_quiet = sum(1 for t in stream if 200.0 <= t.at_ms < 300.0)
        assert second_rush > second_quiet


class TestFaultBursts:
    def test_burst_faults_lie_inside_the_ball(self):
        graph = _grid()
        center = 27
        burst = FaultBurst(
            start_ms=0.0, duration_ms=500.0, radius=2,
            burst_fault_rate=1.0, center=center,
        )
        config = TrafficConfig(
            base_rate_per_ms=1.0,
            tenants=(TenantProfile("t", fault_rate=0.0, max_faults=3),),
            bursts=(burst,),
        )
        gen = TrafficGenerator(graph, config, seed=17)
        ball = set(bfs_distances(graph, center, radius=2))
        stream = gen.generate(500.0)
        with_faults = [t for t in stream if t.request.vertex_faults]
        assert with_faults  # rate 1.0 inside the burst: faults do occur
        for timed in with_faults:
            assert set(timed.request.vertex_faults) <= ball

    def test_no_faults_outside_burst_when_rate_zero(self):
        burst = FaultBurst(
            start_ms=100.0, duration_ms=50.0, burst_fault_rate=1.0,
            center=0,
        )
        config = TrafficConfig(
            base_rate_per_ms=1.0,
            tenants=(TenantProfile("t", fault_rate=0.0),),
            bursts=(burst,),
        )
        gen = TrafficGenerator(_grid(), config, seed=17)
        for timed in gen.generate(400.0):
            if not 100.0 <= timed.at_ms < 150.0:
                assert timed.request.vertex_faults == ()

    def test_burst_center_defaults_to_seeded_pick(self):
        burst = FaultBurst(start_ms=0.0, duration_ms=200.0)
        config = TrafficConfig(
            base_rate_per_ms=1.0,
            tenants=(TenantProfile("t"),),
            bursts=(burst,),
        )
        a = TrafficGenerator(_grid(), config, seed=4).generate(200.0)
        b = TrafficGenerator(_grid(), config, seed=4).generate(200.0)
        assert a == b


class TestOverloadMix:
    def test_mix_shape(self):
        config = overload_mix(offered_multiplier=4.0, base_rate_per_ms=1.0)
        assert config.base_rate_per_ms == 4.0
        names = [t.name for t in config.tenants]
        assert names == ["aggregator", "product", "interactive"]
        assert config.bursts and config.phases

    def test_mix_streams_are_reproducible(self):
        graph = grid_graph(10, 10)
        config = overload_mix()
        a = TrafficGenerator(graph, config, seed=0).generate(250.0)
        b = TrafficGenerator(graph, config, seed=0).generate(250.0)
        assert a == b


class TestConstructionValidation:
    """Bad configs fail loudly at construction, naming the bad field."""

    def test_tenant_name_required(self):
        with pytest.raises(QueryError, match="non-empty name"):
            TenantProfile("")

    def test_tenant_fault_rate_bounds(self):
        with pytest.raises(QueryError, match="fault_rate"):
            TenantProfile("a", fault_rate=1.5)
        with pytest.raises(QueryError, match="fault_rate"):
            TenantProfile("a", fault_rate=-0.1)

    def test_tenant_max_faults_floor(self):
        with pytest.raises(QueryError, match="max_faults"):
            TenantProfile("a", max_faults=0)

    def test_tenant_needs_users(self):
        with pytest.raises(QueryError, match="at least one user"):
            TenantProfile("a", num_users=0)

    def test_tenant_deadline_must_be_positive(self):
        with pytest.raises(QueryError, match="deadline_ms"):
            TenantProfile("a", deadline_ms=0.0)

    def test_phase_duration_must_be_positive(self):
        with pytest.raises(QueryError, match="phase duration"):
            TrafficPhase(duration_ms=0.0)

    def test_phase_multiplier_must_be_positive(self):
        with pytest.raises(QueryError, match="rate multiplier"):
            TrafficPhase(duration_ms=10.0, rate_multiplier=-1.0)

    def test_burst_start_and_duration(self):
        with pytest.raises(QueryError, match="burst start"):
            FaultBurst(start_ms=-1.0, duration_ms=10.0)
        with pytest.raises(QueryError, match="burst duration"):
            FaultBurst(start_ms=0.0, duration_ms=0.0)

    def test_burst_rate_bounds(self):
        with pytest.raises(QueryError, match="burst fault rate"):
            FaultBurst(start_ms=0.0, duration_ms=10.0, burst_fault_rate=2.0)

    def test_burst_radius_floor(self):
        with pytest.raises(QueryError, match="burst radius"):
            FaultBurst(start_ms=0.0, duration_ms=10.0, radius=-1)

    def test_burst_vertices_must_be_distinct(self):
        with pytest.raises(QueryError, match="distinct"):
            FaultBurst(start_ms=0.0, duration_ms=10.0, vertices=(3, 3))

    def test_burst_max_faults_floor(self):
        with pytest.raises(QueryError, match="burst max_faults"):
            FaultBurst(start_ms=0.0, duration_ms=10.0, max_faults=0)

    def test_config_zipf_exponent_floor(self):
        with pytest.raises(QueryError, match="Zipf exponent"):
            TrafficConfig(zipf_exponent=-0.5)

    def test_explicit_burst_vertices_pin_the_fault_pool(self):
        config = TrafficConfig(
            base_rate_per_ms=1.0,
            tenants=(TenantProfile("a", fault_rate=1.0, max_faults=2),),
            bursts=(FaultBurst(start_ms=0.0, duration_ms=100.0,
                               burst_fault_rate=1.0, vertices=(3, 4, 5),
                               max_faults=2),),
        )
        stream = TrafficGenerator(_grid(), config, seed=1).generate(100.0)
        faulted = [r.request for r in stream if r.request.vertex_faults]
        assert faulted
        for request in faulted:
            assert set(request.vertex_faults) <= {3, 4, 5}
            assert len(request.vertex_faults) <= 2
