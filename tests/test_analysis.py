"""Tests for the analysis harness (tables, stretch evaluation, reports)."""

import math

import pytest

from repro.analysis import Table, evaluate_stretch, label_size_summary
from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.baselines import ExactRecomputeOracle
from repro.graphs.generators import cycle_graph, grid_graph
from repro.labeling import ForbiddenSetLabeling
from repro.workloads import Query, random_queries


class TestTable:
    def test_render_alignment(self):
        table = Table(title="T", columns=["a", "bb"])
        table.add_row(a=1, bb="x")
        table.add_row(a=22, bb="yyy")
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(set(len(line) for line in lines[2:6])) == 1  # aligned

    def test_missing_column_rejected(self):
        table = Table(title="T", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(a=1)

    def test_float_and_inf_formatting(self):
        table = Table(title="T", columns=["x"])
        table.add_row(x=1.23456)
        table.add_row(x=math.inf)
        rendered = table.render()
        assert "1.235" in rendered and "inf" in rendered

    def test_notes_rendered(self):
        table = Table(title="T", columns=["x"], notes="hello")
        table.add_row(x=1)
        assert "note: hello" in table.render()


class TestEvaluateStretch:
    def test_clean_on_correct_scheme(self):
        g = grid_graph(6, 6)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        queries = random_queries(g, 15, max_vertex_faults=3, seed=1)
        report = evaluate_stretch(g, scheme, queries)
        assert report.clean
        assert report.num_queries == 15
        assert 1.0 <= report.mean_stretch <= report.max_stretch

    def test_detects_undershooting_scheme(self):
        g = cycle_graph(16)

        class Cheater:
            def query(self, s, t, vertex_faults=(), edge_faults=()):
                return 1  # always claims distance 1

            def stretch_bound(self):
                return 2.0

        queries = [Query(s=0, t=8)]
        report = evaluate_stretch(g, Cheater(), queries)
        assert report.violations == 1 and not report.clean

    def test_detects_connectivity_mismatch(self):
        g = cycle_graph(16)

        class AlwaysConnected:
            def query(self, s, t, vertex_faults=(), edge_faults=()):
                return 5

            def stretch_bound(self):
                return math.inf

        queries = [Query(s=0, t=8, vertex_faults=(4, 12))]  # disconnects C_16
        report = evaluate_stretch(g, AlwaysConnected(), queries)
        assert report.connectivity_mismatches == 1

    def test_exact_baseline_is_clean(self):
        g = grid_graph(5, 5)
        queries = random_queries(g, 10, max_vertex_faults=2, seed=2)
        report = evaluate_stretch(
            g, ExactRecomputeOracle(g), queries, stretch_bound=1.0
        )
        assert report.clean and report.max_stretch == 1.0


class TestLabelStats:
    def test_summary_fields(self):
        g = grid_graph(5, 5)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        summary = label_size_summary(scheme, g, sample=5, seed=0)
        assert summary.num_labels == 5
        assert summary.max_bits >= summary.mean_bits > 0
        assert summary.max_kib == summary.max_bits / 8192

    def test_full_sample(self):
        g = cycle_graph(12)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        summary = label_size_summary(scheme, g, sample=None)
        assert summary.num_labels == 12


class TestExperimentRegistry:
    def test_all_registered(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 15)}

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_case_insensitive(self):
        tables = run_experiment("e9", quick=True)
        assert len(tables) == 2
