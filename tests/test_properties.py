"""Property-based tests of the decoder's core invariants.

Random small connected graphs (random trees plus random extra edges) and
random fault sets; the invariants checked against the exact baseline:

* **sandwich** — ``d_{G\\F} <= delta <= (1+eps) d_{G\\F}``;
* **connectivity exactness** — ``delta < inf`` iff connected in ``G\\F``;
* **symmetry** — ``delta(s, t, F) = delta(t, s, F)``;
* **no-fault consistency** — the empty fault set matches a fault set of
  elements irrelevant to the component;
* **codec transparency** — decoding from re-encoded labels changes
  nothing.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ExactRecomputeOracle
from repro.graphs.generators import random_tree
from repro.labeling import (
    FaultSet,
    ForbiddenSetLabeling,
    decode_distance,
    decode_label,
    encode_label,
)


def random_connected_graph(n: int, extra_edges: int, seed: int):
    g = random_tree(n, seed)
    rng = random.Random(seed ^ 0xBEEF)
    for _ in range(extra_edges):
        a, b = rng.sample(range(n), 2)
        if not g.has_edge(a, b):
            g.add_edge(a, b)
    return g


def random_instance(data, max_n=28):
    n = data.draw(st.integers(4, max_n), label="n")
    seed = data.draw(st.integers(0, 10**6), label="seed")
    extra = data.draw(st.integers(0, n // 2), label="extra_edges")
    graph = random_connected_graph(n, extra, seed)
    s = data.draw(st.integers(0, n - 1), label="s")
    t = data.draw(
        st.integers(0, n - 1).filter(lambda v: v != s), label="t"
    )
    k = data.draw(st.integers(0, min(4, n - 2)), label="num_faults")
    candidates = [v for v in range(n) if v not in (s, t)]
    rng = random.Random(seed ^ 0xF00D)
    faults = rng.sample(candidates, min(k, len(candidates)))
    return graph, s, t, faults


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_sandwich_and_connectivity(data):
    graph, s, t, faults = random_instance(data)
    scheme = ForbiddenSetLabeling(graph, epsilon=1.0)
    exact = ExactRecomputeOracle(graph)
    d_true = exact.query(s, t, vertex_faults=faults)
    d_hat = scheme.query(s, t, vertex_faults=faults).distance
    if math.isinf(d_true):
        assert math.isinf(d_hat)
    else:
        assert d_true <= d_hat <= scheme.stretch_bound() * d_true + 1e-9


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_symmetry(data):
    graph, s, t, faults = random_instance(data)
    scheme = ForbiddenSetLabeling(graph, epsilon=1.0)
    forward = scheme.query(s, t, vertex_faults=faults).distance
    backward = scheme.query(t, s, vertex_faults=faults).distance
    assert forward == backward


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_edge_fault_consistency(data):
    """Removing an edge via the fault set equals removing it from G."""
    graph, s, t, _ = random_instance(data)
    edges = list(graph.edges())
    if not edges:
        return
    edge = edges[len(edges) // 2]
    scheme = ForbiddenSetLabeling(graph, epsilon=1.0)
    exact = ExactRecomputeOracle(graph)
    d_true = exact.query(s, t, edge_faults=[edge])
    d_hat = scheme.query(s, t, edge_faults=[edge]).distance
    if math.isinf(d_true):
        assert math.isinf(d_hat)
    else:
        assert d_true <= d_hat <= scheme.stretch_bound() * d_true + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_codec_transparency(data):
    graph, s, t, faults = random_instance(data, max_n=20)
    scheme = ForbiddenSetLabeling(graph, epsilon=1.0)
    live = scheme.query(s, t, vertex_faults=faults)
    wire = lambda v: decode_label(encode_label(scheme.label(v)))
    shipped = decode_distance(
        wire(s), wire(t), FaultSet(vertex_labels=[wire(f) for f in faults])
    )
    assert live.distance == shipped.distance


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_sketch_path_is_realizable(data):
    """Consecutive sketch-path vertices are at the claimed G\\F distance."""
    from repro.graphs.traversal import bfs_distances_avoiding

    graph, s, t, faults = random_instance(data, max_n=24)
    scheme = ForbiddenSetLabeling(graph, epsilon=1.0)
    result = scheme.query(s, t, vertex_faults=faults)
    if math.isinf(result.distance):
        return
    total = 0
    for a, b in zip(result.path, result.path[1:]):
        dist = bfs_distances_avoiding(graph, a, forbidden_vertices=faults)
        assert b in dist, "sketch edge not realizable in G \\ F"
        total += dist[b]
    assert total <= result.distance  # the legs sum to at most the estimate
