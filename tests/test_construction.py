"""Tests for forbidden-set label construction (the 'Labels' paragraph)."""

import pytest

from repro.exceptions import LabelingError
from repro.graphs import Graph, bfs_distances
from repro.graphs.generators import cycle_graph, grid_graph, path_graph
from repro.labeling import ForbiddenSetLabeling, LabelingOptions
from repro.labeling.construction import LabelBuilder


@pytest.fixture(scope="module")
def grid_scheme():
    return ForbiddenSetLabeling(grid_graph(8, 8), epsilon=1.0)


class TestOptions:
    def test_invalid_low_level(self):
        with pytest.raises(LabelingError):
            LabelingOptions(low_level="bogus")

    def test_defaults(self):
        assert LabelingOptions().low_level == "full"


class TestBuilder:
    def test_empty_graph_rejected(self):
        with pytest.raises(LabelingError):
            LabelBuilder(Graph(0), epsilon=1.0)

    def test_out_of_range_vertex(self):
        builder = LabelBuilder(path_graph(4), epsilon=1.0)
        with pytest.raises(LabelingError):
            builder.build_label(4)

    def test_label_has_every_level(self, grid_scheme):
        label = grid_scheme.label(0)
        assert sorted(label.levels) == list(grid_scheme.params.levels())

    def test_owner_always_a_point(self, grid_scheme):
        label = grid_scheme.label(27)
        for level_label in label.levels.values():
            assert level_label.points[27] == 0

    def test_point_distances_are_exact(self, grid_scheme):
        g = grid_graph(8, 8)
        truth = bfs_distances(g, 11)
        label = grid_scheme.label(11)
        for level_label in label.levels.values():
            for point, dist in level_label.points.items():
                assert dist == truth[point]

    def test_points_come_from_the_right_net(self, grid_scheme):
        params = grid_scheme.params
        builder = grid_scheme._builder
        label = grid_scheme.label(5)
        for i, level_label in label.levels.items():
            net = builder.hierarchy.net(params.net_level(i))
            for point in level_label.points:
                assert point in net or point == 5

    def test_points_respect_ball_radius(self, grid_scheme):
        params = grid_scheme.params
        label = grid_scheme.label(36)
        for i, level_label in label.levels.items():
            assert all(d <= params.r(i) for d in level_label.points.values())

    def test_edges_respect_length_cap(self, grid_scheme):
        params = grid_scheme.params
        label = grid_scheme.label(36)
        for i, level_label in label.levels.items():
            lam = params.lam(i)
            for (x, y), weight in level_label.edges.items():
                assert x < y
                assert 1 <= weight <= lam
                assert x in level_label.points and y in level_label.points

    def test_edge_weights_are_true_distances(self, grid_scheme):
        g = grid_graph(8, 8)
        label = grid_scheme.label(20)
        for level_label in label.levels.values():
            for (x, y), weight in level_label.edges.items():
                assert bfs_distances(g, x, radius=weight)[y] == weight

    def test_lowest_level_contains_graph_edges(self, grid_scheme):
        """Level c+1 must store the actual graph edges inside the ball."""
        g = grid_graph(8, 8)
        params = grid_scheme.params
        lowest = params.c + 1
        label = grid_scheme.label(0)
        ball = bfs_distances(g, 0, radius=params.r(lowest))
        for u, v in g.edges():
            if u in ball and v in ball:
                assert label.levels[lowest].edges.get((u, v)) == 1

    def test_low_level_completeness_full_mode(self):
        """Faithful mode: *all* pairs within lambda are present at level c+1."""
        g = cycle_graph(24)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        params = scheme.params
        lowest = params.c + 1
        label = scheme.label(0)
        level_label = label.levels[lowest]
        points = list(level_label.points)
        for a in points:
            dist_a = bfs_distances(g, a, radius=params.lam(lowest))
            for b in points:
                if b <= a:
                    continue
                d = dist_a.get(b)
                if d is not None and d <= params.lam(lowest):
                    assert level_label.edges[(a, b)] == d

    def test_unit_mode_smaller_lowest_level(self):
        g = grid_graph(7, 7)
        full = ForbiddenSetLabeling(g, epsilon=1.0)
        unit = ForbiddenSetLabeling(
            g, epsilon=1.0, options=LabelingOptions(low_level="unit")
        )
        lowest = full.params.c + 1
        v = 24
        assert (
            unit.label(v).levels[lowest].num_edges()
            < full.label(v).levels[lowest].num_edges()
        )

    def test_unit_mode_keeps_higher_levels_identical(self):
        g = grid_graph(7, 7)
        full = ForbiddenSetLabeling(g, epsilon=1.0)
        unit = ForbiddenSetLabeling(
            g, epsilon=1.0, options=LabelingOptions(low_level="unit")
        )
        lowest = full.params.c + 1
        for i in full.params.levels():
            if i == lowest:
                continue
            assert full.label(3).levels[i].edges == unit.label(3).levels[i].edges

    def test_single_vertex_graph(self):
        scheme = ForbiddenSetLabeling(Graph(1), epsilon=1.0)
        label = scheme.label(0)
        assert all(lvl.points == {0: 0} for lvl in label.levels.values())

    def test_labels_cached(self, grid_scheme):
        assert grid_scheme.label(1) is grid_scheme.label(1)
