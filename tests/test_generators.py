"""Tests for graph generators, including the Section 3 constructions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graphs import bfs_distances, is_connected
from repro.graphs.generators import (
    balanced_tree,
    caterpillar,
    complete_graph,
    cycle_graph,
    grid_coords,
    grid_graph,
    grid_index,
    half_king_grid,
    hypercube_graph,
    king_grid,
    path_graph,
    random_geometric_graph,
    random_tree,
    road_like_graph,
    sample_family_graph,
    star_graph,
    torus_graph,
)


class TestElementary:
    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4 and is_connected(g)

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(4)
        assert g.degree(0) == 4 and g.num_edges == 4

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10

    def test_balanced_tree_size(self):
        g = balanced_tree(2, 3)
        assert g.num_vertices == 15 and g.num_edges == 14 and is_connected(g)

    def test_random_tree_is_tree(self):
        g = random_tree(40, seed=7)
        assert g.num_edges == 39 and is_connected(g)

    def test_random_tree_deterministic(self):
        a = random_tree(20, seed=3)
        b = random_tree(20, seed=3)
        assert list(a.edges()) == list(b.edges())

    def test_caterpillar(self):
        g = caterpillar(5, 2)
        assert g.num_vertices == 15 and is_connected(g)
        assert g.num_edges == 14  # a tree


class TestGrids:
    def test_grid_index_roundtrip(self):
        dims = (3, 4, 5)
        for index in range(60):
            assert grid_index(grid_coords(index, dims), dims) == index

    def test_grid_2d_structure(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # vertical + horizontal

    def test_grid_distances_are_manhattan(self):
        g = grid_graph(5, 5)
        dist = bfs_distances(g, grid_index((0, 0), (5, 5)))
        for x in range(5):
            for y in range(5):
                assert dist[grid_index((x, y), (5, 5))] == x + y

    def test_grid_3d(self):
        g = grid_graph(3, 3, 3)
        assert g.num_vertices == 27 and is_connected(g)

    def test_torus_regular(self):
        g = torus_graph(4, 5)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_torus_axis_too_small(self):
        with pytest.raises(GraphError):
            torus_graph(2, 5)

    def test_bad_grid_shape(self):
        with pytest.raises(GraphError):
            grid_graph()


class TestGeometric:
    def test_geometric_deterministic(self):
        g1, p1 = random_geometric_graph(50, 0.3, seed=1)
        g2, p2 = random_geometric_graph(50, 0.3, seed=1)
        assert p1 == p2 and sorted(g1.edges()) == sorted(g2.edges())

    def test_geometric_edges_respect_radius(self):
        g, points = random_geometric_graph(80, 0.25, seed=2)
        for u, v in g.edges():
            dx = points[u][0] - points[v][0]
            dy = points[u][1] - points[v][1]
            assert dx * dx + dy * dy <= 0.25**2 + 1e-12

    def test_geometric_no_missing_edges(self):
        g, points = random_geometric_graph(60, 0.3, seed=3)
        present = set(g.edges())
        for u in range(60):
            for v in range(u + 1, 60):
                dx = points[u][0] - points[v][0]
                dy = points[u][1] - points[v][1]
                if dx * dx + dy * dy <= 0.3**2 - 1e-12:
                    assert (u, v) in present

    def test_road_like_connected(self):
        g = road_like_graph(8, 8, removal_fraction=0.15, seed=4)
        assert is_connected(g)
        assert g.num_vertices == 64


class TestLowerBoundConstructions:
    def test_king_grid_2d_degrees(self):
        g = king_grid(4, 2)
        # corner vertices of a king grid have degree 3
        assert g.degree(grid_index((0, 0), (4, 4))) == 3
        # interior vertices have degree 8
        assert g.degree(grid_index((1, 1), (4, 4))) == 8

    def test_half_king_grid_is_subgraph(self):
        g = king_grid(3, 2)
        h = half_king_grid(3, 2)
        g_edges = set(g.edges())
        assert all(e in g_edges for e in h.edges())

    def test_half_king_grid_drops_constant_edge_fraction(self):
        # the paper's |E(H)| <= m/2 holds asymptotically in p and d; at
        # small sizes boundary effects inflate the ratio, but a constant
        # fraction of G's edges must be missing (that fraction is what the
        # counting argument of Theorem 3.1 exponentiates)
        for p, d in ((3, 4), (4, 4), (5, 2)):
            g = king_grid(p, d)
            h = half_king_grid(p, d)
            ratio = h.num_edges / g.num_edges
            assert ratio <= 0.6
        # and the ratio decreases toward 1/2 as p grows
        r3 = half_king_grid(3, 4).num_edges / king_grid(3, 4).num_edges
        r4 = half_king_grid(4, 4).num_edges / king_grid(4, 4).num_edges
        assert r4 < r3

    def test_half_king_is_2_spanner(self):
        g = king_grid(4, 2)
        h = half_king_grid(4, 2)
        for u, v in g.edges():
            assert bfs_distances(h, u, radius=2).get(v, 99) <= 2

    def test_half_king_odd_d_rejected(self):
        with pytest.raises(GraphError):
            half_king_grid(3, 3)

    def test_sampled_family_between_h_and_g(self):
        g = king_grid(3, 2)
        h = half_king_grid(3, 2)
        sample = sample_family_graph(3, 2, seed=5)
        g_edges, h_edges = set(g.edges()), set(h.edges())
        sample_edges = set(sample.edges())
        assert h_edges <= sample_edges <= g_edges

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.num_vertices == 16
        assert all(g.degree(v) == 4 for v in g.vertices())


class TestSierpinski:
    def test_counts_match_theory(self):
        from repro.graphs.generators import sierpinski_graph

        for depth in range(5):
            g = sierpinski_graph(depth)
            assert g.num_vertices == 3 * (3**depth + 1) // 2
            assert g.num_edges == 3 ** (depth + 1)
            assert is_connected(g)

    def test_degree_profile(self):
        from repro.graphs.generators import sierpinski_graph

        g = sierpinski_graph(3)
        degrees = sorted(g.degree(v) for v in g.vertices())
        # exactly the three outer corners have degree 2; the rest degree 4
        assert degrees.count(2) == 3
        assert degrees.count(4) == g.num_vertices - 3

    def test_negative_depth_rejected(self):
        from repro.graphs.generators import sierpinski_graph

        with pytest.raises(GraphError):
            sierpinski_graph(-1)

    def test_scheme_works_on_fractal(self):
        import math as _math

        from repro.baselines import ExactRecomputeOracle
        from repro.graphs.generators import sierpinski_graph
        from repro.labeling import ForbiddenSetLabeling

        g = sierpinski_graph(4)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        exact = ExactRecomputeOracle(g)
        for s, t, faults in [(0, 1, [2]), (0, 50, [10, 20]), (3, 100, [])]:
            d_true = exact.query(s, t, vertex_faults=faults)
            d_hat = scheme.query(s, t, vertex_faults=faults).distance
            if _math.isinf(d_true):
                assert _math.isinf(d_hat)
            else:
                assert d_true <= d_hat <= 2 * d_true


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 5), st.integers(2, 5))
def test_grid_is_connected_property(w, h):
    assert is_connected(grid_graph(w, h))
