"""Precision tests of the decoder's internal safety machinery.

These pin down the exact semantics of the protected-ball rules
(documented in ``labeling/decoder.py``) with hand-built labels, rather
than going through the full construction.
"""

import math

import pytest

from repro.labeling.decoder import (
    FaultSet,
    _ProtectedBalls,
    _edge_is_safe,
    build_sketch_graph,
    decode_distance,
)
from repro.labeling.label import LevelLabel, VertexLabel


def make_label(vertex, levels_spec, c=2, top=4):
    """levels_spec: {level: (points, edges, graph_edges)}."""
    label = VertexLabel(vertex=vertex, epsilon=1.0, c=c, top_level=top)
    for level, (points, edges, graph_edges) in levels_spec.items():
        label.levels[level] = LevelLabel(
            level=level, points=dict(points), edges=dict(edges),
            graph_edges=dict(graph_edges),
        )
    return label


class TestProtectedBalls:
    def test_membership_restricted_to_lambda(self):
        fault = make_label(9, {3: ({9: 0, 1: 5, 2: 30}, {}, {})})
        group = _ProtectedBalls(centers=(fault,))
        (ball,) = group.membership(3, lam=16)
        assert ball == {9: 0, 1: 5}  # 2 is beyond lambda

    def test_missing_level_is_empty(self):
        fault = make_label(9, {3: ({9: 0}, {}, {})})
        group = _ProtectedBalls(centers=(fault,))
        (ball,) = group.membership(4, lam=32)
        assert ball == {}


class TestEdgeSafety:
    def _vertex_group(self, ball):
        return [_ProtectedBalls(centers=())], [[ball]]

    def test_net_net_both_inside_excluded(self):
        groups = [_ProtectedBalls(centers=(), is_edge_fault=False)]
        memberships = [[{1: 3, 2: 4}]]
        assert not _edge_is_safe(1, 2, True, True, memberships, groups)

    def test_net_net_one_outside_survives(self):
        groups = [_ProtectedBalls(centers=(), is_edge_fault=False)]
        memberships = [[{1: 3}]]  # 2 outside
        assert _edge_is_safe(1, 2, True, True, memberships, groups)

    def test_owner_edge_net_endpoint_inside_excluded(self):
        groups = [_ProtectedBalls(centers=(), is_edge_fault=False)]
        memberships = [[{2: 4}]]  # net endpoint 2 inside; owner 1 unknowable
        assert not _edge_is_safe(1, 2, False, True, memberships, groups)

    def test_owner_edge_net_endpoint_outside_survives(self):
        groups = [_ProtectedBalls(centers=(), is_edge_fault=False)]
        memberships = [[{7: 1}]]
        assert _edge_is_safe(1, 2, False, True, memberships, groups)

    def test_edge_fault_crossing_pattern_excluded(self):
        groups = [_ProtectedBalls(centers=(), is_edge_fault=True)]
        memberships = [[{1: 3}, {2: 3}]]  # x in PB(a), y in PB(b)
        assert not _edge_is_safe(1, 2, True, True, memberships, groups)

    def test_edge_fault_same_side_survives(self):
        groups = [_ProtectedBalls(centers=(), is_edge_fault=True)]
        memberships = [[{1: 3, 2: 4}, {}]]  # both near a, neither near b
        assert _edge_is_safe(1, 2, True, True, memberships, groups)

    def test_edge_fault_owner_edge_needs_both_balls(self):
        groups = [_ProtectedBalls(centers=(), is_edge_fault=True)]
        memberships = [[{2: 3}, {2: 4}]]  # net endpoint inside both
        assert not _edge_is_safe(1, 2, False, True, memberships, groups)
        memberships = [[{2: 3}, {}]]  # inside only one
        assert _edge_is_safe(1, 2, False, True, memberships, groups)

    def test_multiple_faults_any_exclusion_wins(self):
        groups = [
            _ProtectedBalls(centers=(), is_edge_fault=False),
            _ProtectedBalls(centers=(), is_edge_fault=False),
        ]
        memberships = [[{}], [{1: 1, 2: 1}]]
        assert not _edge_is_safe(1, 2, True, True, memberships, groups)


class TestHandBuiltSketch:
    """A miniature instance assembled by hand: path 0-1-2-3-4 plus labels
    containing exactly controlled content."""

    def setup_method(self):
        # lowest level (c=2 -> level 3) with graph edges of the path
        chain = {(0, 1): 1, (1, 2): 1, (2, 3): 1, (3, 4): 1}
        points = {v: abs(v) for v in range(5)}
        self.label_s = make_label(
            0, {3: ({0: 0, 1: 1, 2: 2, 3: 3, 4: 4}, dict(chain), dict(chain))}
        )
        self.label_t = make_label(
            4, {3: ({0: 4, 1: 3, 2: 2, 3: 1, 4: 0}, dict(chain), dict(chain))}
        )

    def test_no_faults_distance(self):
        result = decode_distance(self.label_s, self.label_t)
        assert result.distance == 4
        assert result.path == (0, 1, 2, 3, 4)

    def test_vertex_fault_disconnects(self):
        fault = make_label(2, {3: ({0: 2, 1: 1, 2: 0, 3: 1, 4: 2}, {}, {})})
        result = decode_distance(
            self.label_s, self.label_t, FaultSet(vertex_labels=[fault])
        )
        assert math.isinf(result.distance)

    def test_edge_fault_disconnects(self):
        fa = make_label(2, {3: ({2: 0}, {}, {})})
        fb = make_label(3, {3: ({3: 0}, {}, {})})
        result = decode_distance(
            self.label_s, self.label_t, FaultSet(edge_labels=[(fa, fb)])
        )
        assert math.isinf(result.distance)

    def test_virtual_edge_bypasses_when_outside_balls(self):
        # add a long virtual edge (0,4) at a higher level; a fault at 2
        # with a small protected ball must not exclude it when both
        # endpoints are outside the ball
        self.label_s.levels[4] = LevelLabel(
            level=4, points={0: 0, 4: 4}, edges={(0, 4): 4}, graph_edges={}
        )
        self.label_t.levels[4] = LevelLabel(
            level=4, points={0: 4, 4: 0}, edges={(0, 4): 4}, graph_edges={}
        )
        fault = make_label(
            2,
            {
                3: ({0: 2, 1: 1, 2: 0, 3: 1, 4: 2}, {}, {}),
                4: ({2: 0}, {}, {}),  # level-4 ball: 0 and 4 not listed
            },
        )
        result = decode_distance(
            self.label_s, self.label_t, FaultSet(vertex_labels=[fault])
        )
        assert result.distance == 4  # the virtual edge survives

    def test_virtual_edge_excluded_when_both_inside(self):
        self.label_s.levels[4] = LevelLabel(
            level=4, points={0: 0, 4: 4}, edges={(0, 4): 4}, graph_edges={}
        )
        fault = make_label(
            2,
            {
                3: ({0: 2, 1: 1, 2: 0, 3: 1, 4: 2}, {}, {}),
                4: ({2: 0, 0: 2, 4: 2}, {}, {}),  # both endpoints inside PB
            },
        )
        result = decode_distance(
            self.label_s, self.label_t, FaultSet(vertex_labels=[fault])
        )
        assert math.isinf(result.distance)


class TestFaultSetHelpers:
    def test_len_and_ids(self):
        a = make_label(1, {})
        b = make_label(2, {})
        c = make_label(3, {})
        fs = FaultSet(vertex_labels=[a], edge_labels=[(b, c)])
        assert len(fs) == 2
        assert fs.forbidden_vertices() == {1}
        assert fs.forbidden_edges() == {(2, 3)}
        assert {lbl.vertex for lbl in fs.all_labels()} == {1, 2, 3}

    def test_build_sketch_rejects_endpoint_fault(self):
        s = make_label(0, {3: ({0: 0}, {}, {})})
        t = make_label(4, {3: ({4: 0}, {}, {})})
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            build_sketch_graph(s, t, FaultSet(vertex_labels=[s]))
