"""Tests for the scenario-trace format: parse, validate, serialize."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ScenarioError
from repro.scenario import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    ScenarioEvent,
    ScenarioTrace,
    TraceTenant,
    parse_trace,
    serialize_trace,
    trace_crc,
)
from repro.service.frontend import SHED_REASONS, DegradationReason


def rich_trace() -> ScenarioTrace:
    return ScenarioTrace(
        name="rich",
        graph_spec="grid:6x6",
        duration_ms=500.0,
        seed=11,
        base_rate_per_ms=0.25,
        window_ms=100.0,
        num_shards=4,
        replication=2,
        tenants=(
            TraceTenant("default", weight=2.0),
            TraceTenant("batch", fault_rate=0.5, deadline_ms=40.0),
        ),
        events=(
            ScenarioEvent(at_ms=50.0, kind="ball_outage", center=14,
                          radius=1, duration_ms=100.0),
            ScenarioEvent(at_ms=60.0, kind="probe", s=0, t=35,
                          faults=(14, 15), edge_faults=((0, 1),)),
            ScenarioEvent(at_ms=80.0, kind="flash_crowd", multiplier=2.5,
                          duration_ms=60.0),
            ScenarioEvent(at_ms=150.0, kind="maintenance", shards=(0, 1),
                          window_ms=40.0),
            ScenarioEvent(at_ms=250.0, kind="rollout_begin", edge=(0, 1)),
            ScenarioEvent(at_ms=300.0, kind="shard_crash", shard=2),
            ScenarioEvent(at_ms=340.0, kind="shard_restart", shard=2),
            ScenarioEvent(at_ms=400.0, kind="rollout_commit"),
            ScenarioEvent(at_ms=450.0, kind="outage", vertices=(3, 4),
                          duration_ms=30.0, fault_rate=0.5, max_faults=2),
        ),
    )


class TestRoundTrip:
    def test_parse_serialize_parse_is_identity(self):
        trace = rich_trace()
        text = serialize_trace(trace)
        parsed = parse_trace(text)
        assert parsed == trace
        assert serialize_trace(parsed) == text

    def test_comments_and_blank_lines_do_not_invalidate_crc(self):
        text = serialize_trace(rich_trace())
        lines = text.splitlines()
        noisy = "\n".join(
            ["# a comment", lines[0], "", "  # indented comment"]
            + lines[1:]
        ) + "\n"
        assert parse_trace(noisy) == rich_trace()

    def test_crc_is_content_addressed(self):
        trace = rich_trace()
        assert trace_crc(trace) == trace_crc(rich_trace())
        assert trace_crc(trace) != trace_crc(trace.with_seed(12))

    def test_with_seed_changes_only_the_seed(self):
        reseeded = rich_trace().with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.events == rich_trace().events

    def test_defaults_resolve_canonically(self):
        bare = ScenarioTrace(name="bare", graph_spec="path:4",
                             duration_ms=80.0)
        assert bare.window_ms == 10.0
        assert bare.tenants == (TraceTenant("default"),)
        assert parse_trace(serialize_trace(bare)) == bare


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_property_round_trip_is_byte_identical(data):
    n_events = data.draw(st.integers(0, 5))
    at = 0.0
    events = []
    for _ in range(n_events):
        at += data.draw(st.floats(0.5, 50.0, allow_nan=False))
        kind = data.draw(st.sampled_from(
            ["ball_outage", "outage", "flash_crowd", "shard_down",
             "probe", "maintenance"]
        ))
        if kind == "ball_outage":
            events.append(ScenarioEvent(
                at_ms=at, kind=kind, center=data.draw(st.integers(0, 30)),
                radius=data.draw(st.integers(0, 3)),
                duration_ms=data.draw(st.floats(1.0, 60.0)),
            ))
        elif kind == "outage":
            vertices = tuple(sorted(data.draw(st.sets(
                st.integers(0, 30), min_size=1, max_size=4
            ))))
            events.append(ScenarioEvent(
                at_ms=at, kind=kind, vertices=vertices,
                duration_ms=data.draw(st.floats(1.0, 60.0)),
            ))
        elif kind == "flash_crowd":
            events.append(ScenarioEvent(
                at_ms=at, kind=kind,
                multiplier=data.draw(st.floats(0.1, 5.0)),
                duration_ms=data.draw(st.floats(1.0, 60.0)),
            ))
        elif kind == "shard_down":
            events.append(ScenarioEvent(
                at_ms=at, kind=kind, shard=data.draw(st.integers(0, 3)),
            ))
        elif kind == "maintenance":
            shards = tuple(sorted(data.draw(st.sets(
                st.integers(0, 3), min_size=1, max_size=3
            ))))
            events.append(ScenarioEvent(
                at_ms=at, kind=kind, shards=shards,
                window_ms=data.draw(st.floats(1.0, 30.0)),
            ))
        else:
            s = data.draw(st.integers(0, 30))
            t = data.draw(st.integers(0, 30).filter(lambda v: v != s))
            events.append(ScenarioEvent(at_ms=at, kind="probe", s=s, t=t))
    trace = ScenarioTrace(
        name="prop",
        graph_spec="grid:6x6",
        duration_ms=at + data.draw(st.floats(1.0, 100.0)),
        seed=data.draw(st.integers(0, 2**20)),
        base_rate_per_ms=data.draw(st.floats(0.01, 2.0)),
        events=tuple(events),
    )
    text = serialize_trace(trace)
    parsed = parse_trace(text)
    assert parsed == trace
    # byte-identical: serializing the parse reproduces the file exactly
    assert serialize_trace(parsed) == text


def _expect_error(text: str, fragment: str, line: int | None = None):
    with pytest.raises(ScenarioError) as err:
        parse_trace(text)
    assert fragment in str(err.value), str(err.value)
    if line is not None:
        assert err.value.line == line
    return err.value


class TestParserStrictness:
    def test_empty_file(self):
        _expect_error("", "empty scenario file")

    def test_bad_magic(self):
        _expect_error("not-a-scenario v1\n", "bad magic", line=1)

    def test_unsupported_version(self):
        _expect_error(
            f"repro-scenario v{SCHEMA_VERSION + 1}\n",
            "unsupported schema version",
            line=1,
        )

    def test_unknown_directive(self):
        text = "repro-scenario v1\nname x\ngraph path:4\nbogus 3\n"
        _expect_error(text, "unknown directive 'bogus'", line=4)

    def test_duplicate_directive(self):
        text = "repro-scenario v1\nname x\nname y\n"
        _expect_error(text, "duplicate directive 'name'", line=3)

    def test_header_after_event_rejected(self):
        text = (
            "repro-scenario v1\nname x\ngraph path:4\nduration_ms 100\n"
            "@10 shard_down shard=0\nseed 3\n"
        )
        _expect_error(text, "after the first event", line=6)

    def test_unknown_event_kind(self):
        text = (
            "repro-scenario v1\nname x\ngraph path:4\nduration_ms 100\n"
            "@10 meteor_strike shard=0\n"
        )
        _expect_error(text, "unknown event kind 'meteor_strike'", line=5)

    def test_unknown_event_field_names_field(self):
        text = (
            "repro-scenario v1\nname x\ngraph path:4\nduration_ms 100\n"
            "@10 shard_down shard=0 color=red\n"
        )
        err = _expect_error(text, "does not take field 'color'", line=5)
        assert err.field == "color"

    def test_missing_required_field(self):
        text = (
            "repro-scenario v1\nname x\ngraph path:4\nduration_ms 100\n"
            "@10 ball_outage center=3\n"
        )
        err = _expect_error(text, "needs field 'radius'", line=5)
        assert err.field == "radius"

    def test_unparseable_value_names_line_and_field(self):
        text = (
            "repro-scenario v1\nname x\ngraph path:4\nduration_ms 100\n"
            "@10 shard_down shard=two\n"
        )
        err = _expect_error(text, "cannot parse 'two' as int", line=5)
        assert err.field == "shard"

    def test_out_of_order_events(self):
        text = (
            "repro-scenario v1\nname x\ngraph path:4\nduration_ms 100\n"
            "@50 shard_down shard=0\n@10 shard_recover shard=0\n"
            "crc 00000000\n"
        )
        _expect_error(text, "out of order")

    def test_event_past_duration(self):
        text = (
            "repro-scenario v1\nname x\ngraph path:4\nduration_ms 100\n"
            "@150 shard_down shard=0\ncrc 00000000\n"
        )
        _expect_error(text, "past the scenario duration")

    def test_unpaired_rollout(self):
        text = (
            "repro-scenario v1\nname x\ngraph path:4\nduration_ms 100\n"
            "@10 rollout_begin edge=0-1\ncrc 00000000\n"
        )
        _expect_error(text, "without a matching rollout_commit")

    def test_missing_crc_footer(self):
        trace = rich_trace()
        body = serialize_trace(trace).rsplit("crc ", 1)[0]
        _expect_error(body, "missing crc footer")

    def test_crc_mismatch_fails_loudly(self):
        text = serialize_trace(rich_trace())
        edited = text.replace("seed 11", "seed 12")
        _expect_error(edited, "crc mismatch")

    def test_content_after_crc_rejected(self):
        text = serialize_trace(rich_trace()) + "@490 shard_down shard=0\n"
        _expect_error(text, "content after the crc footer")

    def test_missing_name(self):
        text = "repro-scenario v1\ngraph path:4\nduration_ms 100\ncrc 00000000\n"
        _expect_error(text, "missing required directive 'name'")

    def test_missing_duration(self):
        text = "repro-scenario v1\nname x\ngraph path:4\ncrc 00000000\n"
        _expect_error(text, "missing required directive 'duration_ms'")


class TestValidation:
    def test_unknown_kind_rejected_at_construction(self):
        with pytest.raises(ScenarioError, match="unknown event kind"):
            ScenarioEvent(at_ms=0.0, kind="asteroid")

    def test_event_field_mismatch(self):
        with pytest.raises(ScenarioError, match="does not take field"):
            ScenarioEvent(at_ms=0.0, kind="shard_down", shard=0,
                          multiplier=2.0)

    def test_probe_endpoint_in_fault_set(self):
        with pytest.raises(ScenarioError, match="inside its own"):
            ScenarioEvent(at_ms=0.0, kind="probe", s=1, t=2, faults=(1,))

    def test_negative_duration(self):
        with pytest.raises(ScenarioError, match="must be positive"):
            ScenarioEvent(at_ms=0.0, kind="flash_crowd", multiplier=2.0,
                          duration_ms=-1.0)

    def test_tenant_validation(self):
        with pytest.raises(ScenarioError, match="weight must be positive"):
            TraceTenant("x", weight=0.0)
        with pytest.raises(ScenarioError, match="fault_rate"):
            TraceTenant("x", fault_rate=1.5)

    def test_trace_replication_bound(self):
        with pytest.raises(ScenarioError, match="replication"):
            ScenarioTrace(name="x", graph_spec="path:4", duration_ms=10.0,
                          num_shards=2, replication=3)

    def test_event_kinds_frozen(self):
        assert EVENT_KINDS == frozenset({
            "ball_outage", "outage", "flash_crowd", "maintenance",
            "shard_down", "shard_recover", "shard_crash", "shard_restart",
            "rollout_begin", "rollout_commit", "rollout_abort", "probe",
        })


class TestDegradationReasonFrozen:
    """Golden metrics and scenario reports embed these strings verbatim.

    A rename is a silent wire-format break — this test makes it loud.
    """

    def test_values_exhaustive(self):
        assert {member.value for member in DegradationReason} == {
            "endpoint_unavailable",
            "fault_labels_unavailable",
            "shed_overload",
            "quota_exceeded",
            "queue_deadline",
        }

    def test_members_exhaustive(self):
        assert {member.name for member in DegradationReason} == {
            "ENDPOINT_UNAVAILABLE",
            "FAULT_LABELS_UNAVAILABLE",
            "SHED_OVERLOAD",
            "QUOTA_EXCEEDED",
            "QUEUE_DEADLINE",
        }

    def test_shed_reasons_cover_the_shed_members(self):
        assert SHED_REASONS == frozenset({
            DegradationReason.SHED_OVERLOAD,
            DegradationReason.QUOTA_EXCEEDED,
            DegradationReason.QUEUE_DEADLINE,
        })

    def test_str_comparison_still_works(self):
        assert DegradationReason.SHED_OVERLOAD == "shed_overload"
