"""Differential harness: the array kernel IS the legacy decoder, bit for bit.

The kernel (:class:`repro.labeling.kernel.KernelDecoder`) re-implements
:func:`repro.labeling.decoder.decode_distance` on flat arrays with
cross-query memo caches.  Nothing about it is allowed to show through:
for every query the two decoders must agree on

* the distance, the witness path and the sketch sizes,
* the **entire traced span tree** — names, nesting, and every op-count
  attribute (``nodes_settled``, ``edges_scanned``, ``heap_updates``,
  gather/filter/assembly attrs), byte for byte, and
* every :class:`QueryError` condition (endpoint in ``F``, mixed label
  schemes), message included.

Hypothesis drives (graph family × ε × seeded fault sets); deterministic
cases pin the named edge conditions (``F = ∅``, ``s ∈ F`` / ``t ∈ F``,
disconnected-after-``F``) and the batch API's grouping-order freedom.
Both kernel paths (pure stdlib and numpy) are exercised.

A long-lived kernel per backend serves the whole run on purpose: the
equivalence must survive warm memo caches, arena growth and fault-set
signature reuse, not just a cold first query.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryError
from repro.graphs import generators as gen
from repro.labeling import FaultSet, ForbiddenSetLabeling, decode_distance
from repro.labeling.kernel import HAVE_NUMPY, KernelDecoder
from repro.obs.trace import Tracer

# -- instances ---------------------------------------------------------------

#: (name, build) graph families × ε — small enough that labeling every
#: instance once at module scope keeps the whole harness under a minute.
INSTANCES = [
    ("grid:4x4/e1", lambda: gen.grid_graph(4, 4), 1.0),
    ("grid:4x4/e0.5", lambda: gen.grid_graph(4, 4), 0.5),
    ("cycle:16/e1", lambda: gen.cycle_graph(16), 1.0),
    ("road:4x4/e1", lambda: gen.road_like_graph(4, 4, seed=3), 1.0),
    ("road:4x4/e0.5", lambda: gen.road_like_graph(4, 4, seed=3), 0.5),
    ("tree:20/e1", lambda: gen.random_tree(20, seed=5), 1.0),
]

BACKENDS = ["stdlib"] + (["numpy"] if HAVE_NUMPY else [])

_instance_cache: dict[str, tuple] = {}
_kernel_cache: dict[str, KernelDecoder] = {}


def instance(name):
    """Labels and edge list of a named instance (built once per run)."""
    entry = _instance_cache.get(name)
    if entry is None:
        for iname, build, epsilon in INSTANCES:
            if iname == name:
                graph = build()
                scheme = ForbiddenSetLabeling(graph, epsilon)
                labels = [scheme.label(v) for v in graph.vertices()]
                entry = (labels, sorted(graph.edges()))
                break
        _instance_cache[name] = entry
    return entry


def kernel_for(backend):
    """One long-lived kernel per backend — caches deliberately stay warm."""
    kern = _kernel_cache.get(backend)
    if kern is None:
        kern = _kernel_cache[backend] = KernelDecoder(
            use_numpy=(backend == "numpy")
        )
    return kern


def assert_equivalent(kern, label_s, label_t, faults):
    """One query through both decoders; everything observable must match."""
    legacy_tracer = Tracer()
    kernel_tracer = Tracer()
    try:
        expected = decode_distance(
            label_s, label_t, faults, tracer=legacy_tracer
        )
    except QueryError as exc:
        with pytest.raises(QueryError) as caught:
            kern.decode(label_s, label_t, faults, tracer=kernel_tracer)
        assert str(caught.value) == str(exc)
        return None
    got = kern.decode(label_s, label_t, faults, tracer=kernel_tracer)
    assert got == expected
    assert kernel_tracer.to_dicts() == legacy_tracer.to_dicts()
    return expected


# -- hypothesis-driven sweep -------------------------------------------------


@st.composite
def query_cases(draw):
    """(instance name, s, t, vertex faults, edge faults) over all families."""
    name = draw(st.sampled_from([entry[0] for entry in INSTANCES]))
    labels, edges = instance(name)
    n = len(labels)
    s = draw(st.integers(min_value=0, max_value=n - 1))
    t = draw(st.integers(min_value=0, max_value=n - 1))
    # faults may include s or t: QueryError parity is part of the contract
    fault_v = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            max_size=4,
            unique=True,
        )
    )
    fault_e = draw(st.lists(st.sampled_from(edges), max_size=3, unique=True))
    return name, s, t, tuple(fault_v), tuple(fault_e)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(case=query_cases())
def test_kernel_matches_legacy(backend, case):
    name, s, t, fault_v, fault_e = case
    labels, _ = instance(name)
    faults = FaultSet(
        vertex_labels=[labels[f] for f in fault_v],
        edge_labels=[(labels[a], labels[b]) for a, b in fault_e],
    )
    assert_equivalent(kernel_for(backend), labels[s], labels[t], faults)


# -- deterministic edge conditions -------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_fault_set_and_trivial_queries(backend):
    labels, _ = instance("grid:4x4/e1")
    kern = kernel_for(backend)
    for s, t in [(0, 15), (3, 12), (7, 7), (0, 0)]:
        assert_equivalent(kern, labels[s], labels[t], FaultSet())


@pytest.mark.parametrize("backend", BACKENDS)
def test_endpoint_inside_forbidden_set_raises_identically(backend):
    labels, _ = instance("cycle:16/e1")
    kern = kernel_for(backend)
    s_faults = FaultSet(vertex_labels=[labels[0], labels[5]])
    t_faults = FaultSet(vertex_labels=[labels[9]])
    both = FaultSet(vertex_labels=[labels[2]])
    assert_equivalent(kern, labels[0], labels[9], s_faults)  # s ∈ F
    assert_equivalent(kern, labels[0], labels[9], t_faults)  # t ∈ F
    assert_equivalent(kern, labels[2], labels[2], both)  # s == t ∈ F


@pytest.mark.parametrize("backend", BACKENDS)
def test_disconnected_after_faults(backend):
    # cutting both neighbours of a cycle vertex strands it: the decoded
    # distance must be inf (with an empty path) from both decoders
    labels, _ = instance("cycle:16/e1")
    kern = kernel_for(backend)
    faults = FaultSet(vertex_labels=[labels[1], labels[15]])
    result = assert_equivalent(kern, labels[0], labels[8], faults)
    assert math.isinf(result.distance)
    assert result.path == ()


@pytest.mark.parametrize("backend", BACKENDS)
def test_mixed_scheme_labels_raise_identically(backend):
    labels, _ = instance("grid:4x4/e1")
    other_labels, _ = instance("grid:4x4/e0.5")
    kern = kernel_for(backend)
    assert_equivalent(kern, labels[0], other_labels[5], FaultSet())


# -- batch API: grouping order never changes an answer -----------------------


def _workload(labels, edges, seed, count=40):
    rng = random.Random(seed)
    n = len(labels)
    queries = []
    for _ in range(count):
        s, t = rng.sample(range(n), 2)
        fault_v = rng.sample(
            [v for v in range(n) if v not in (s, t)], rng.randrange(0, 3)
        )
        fault_e = rng.sample(edges, rng.randrange(0, 2))
        queries.append(
            (
                labels[s],
                labels[t],
                FaultSet(
                    vertex_labels=[labels[f] for f in fault_v],
                    edge_labels=[(labels[a], labels[b]) for a, b in fault_e],
                ),
            )
        )
    return queries


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("order_seed", [0, 1, 2])
def test_batch_matches_sequential_in_any_order(backend, order_seed):
    labels, edges = instance("road:4x4/e1")
    queries = _workload(labels, edges, seed=11)
    rng = random.Random(order_seed)
    rng.shuffle(queries)  # grouping opportunities differ per order
    batch_kern = KernelDecoder(use_numpy=(backend == "numpy"))
    seq_kern = KernelDecoder(use_numpy=(backend == "numpy"))
    batch = batch_kern.decode_batch(queries)
    sequential = [seq_kern.decode(ls, lt, faults) for ls, lt, faults in queries]
    legacy = [decode_distance(ls, lt, faults) for ls, lt, faults in queries]
    assert batch == sequential == legacy


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_traces_match_a_decode_loop(backend):
    labels, edges = instance("grid:4x4/e1")
    queries = _workload(labels, edges, seed=13, count=12)
    batch_kern = KernelDecoder(use_numpy=(backend == "numpy"))
    loop_kern = KernelDecoder(use_numpy=(backend == "numpy"))
    batch_tracer = Tracer()
    loop_tracer = Tracer()
    batch_kern.decode_batch(queries, tracer=batch_tracer)
    for ls, lt, faults in queries:
        loop_kern.decode(ls, lt, faults, tracer=loop_tracer)
    assert batch_tracer.to_dicts() == loop_tracer.to_dicts()


# -- numpy path == stdlib path ----------------------------------------------


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
def test_numpy_and_stdlib_paths_agree():
    labels, edges = instance("road:4x4/e0.5")
    queries = _workload(labels, edges, seed=17)
    np_kern = KernelDecoder(use_numpy=True)
    py_kern = KernelDecoder(use_numpy=False)
    np_tracer = Tracer()
    py_tracer = Tracer()
    np_results = np_kern.decode_batch(queries, tracer=np_tracer)
    py_results = py_kern.decode_batch(queries, tracer=py_tracer)
    assert np_results == py_results
    assert np_tracer.to_dicts() == py_tracer.to_dicts()
