"""Tests for routing packet-header encoding."""

from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.generators import grid_graph
from repro.labeling import ForbiddenSetLabeling
from repro.routing.header import (
    PacketHeader,
    decode_header,
    encode_header,
    header_for_route,
)


class TestRoundtrip:
    def test_simple(self):
        header = PacketHeader(
            source=0,
            target=9,
            waypoints=(0, 4, 9),
            forbidden_vertices=(2, 3),
            forbidden_edges=((5, 6),),
        )
        assert decode_header(encode_header(header)) == header

    def test_empty_faults(self):
        header = PacketHeader(source=1, target=2, waypoints=(1, 2))
        assert decode_header(encode_header(header)) == header

    def test_bit_length_matches_bytes(self):
        header = PacketHeader(source=0, target=5, waypoints=(0, 3, 5))
        bits = header.bit_length()
        assert (bits + 7) // 8 == len(encode_header(header))


class TestHeaderForRoute:
    def test_from_query_result(self):
        g = grid_graph(6, 6)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        faults = scheme.fault_set(vertex_faults=[14], edge_faults=[(0, 1)])
        result = scheme.query(0, 35, vertex_faults=[14], edge_faults=[(0, 1)])
        header = header_for_route(result, faults)
        assert header.source == 0 and header.target == 35
        assert header.waypoints == result.path
        assert header.forbidden_vertices == (14,)
        assert header.forbidden_edges == ((0, 1),)
        assert decode_header(encode_header(header)) == header

    def test_header_size_scales_with_plan(self):
        short = PacketHeader(source=0, target=1, waypoints=(0, 1))
        long = PacketHeader(source=0, target=1, waypoints=tuple(range(50)))
        assert long.bit_length() > short.bit_length()


@given(
    st.integers(0, 1000),
    st.integers(0, 1000),
    st.lists(st.integers(0, 10**6), max_size=50),
    st.lists(st.integers(0, 10**4), max_size=10),
    st.lists(st.tuples(st.integers(0, 10**4), st.integers(0, 10**4)), max_size=10),
)
def test_roundtrip_property(source, target, waypoints, fv, fe):
    header = PacketHeader(
        source=source,
        target=target,
        waypoints=tuple(waypoints),
        forbidden_vertices=tuple(fv),
        forbidden_edges=tuple(fe),
    )
    assert decode_header(encode_header(header)) == header
