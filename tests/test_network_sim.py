"""Tests for the network recovery simulator (paper applications section)."""

import pytest

from repro.exceptions import QueryError, RoutingError
from repro.graphs.generators import cycle_graph, grid_graph, path_graph
from repro.routing.network_sim import Knowledge, NetworkSimulator


class TestKnowledge:
    def test_merge_reports_novelty(self):
        a = Knowledge(vertices={1})
        b = Knowledge(vertices={1, 2}, edges={(3, 4)})
        assert a.merge(b)
        assert a.vertices == {1, 2} and a.edges == {(3, 4)}
        assert not a.merge(b)  # nothing new the second time

    def test_copy_is_independent(self):
        a = Knowledge(vertices={1})
        b = a.copy()
        b.vertices.add(2)
        assert a.vertices == {1}


class TestHealthyDelivery:
    def test_shortest_delivery(self):
        sim = NetworkSimulator(grid_graph(6, 6))
        report = sim.send_packet(0, 35)
        assert report.delivered and report.hops == 10
        assert report.route[0] == 0 and report.route[-1] == 35

    def test_endpoint_failed_rejected(self):
        sim = NetworkSimulator(path_graph(5))
        sim.fail_vertex(4)
        with pytest.raises(QueryError):
            sim.send_packet(0, 4)


class TestEventValidation:
    def test_fail_unknown_vertex_rejected(self):
        sim = NetworkSimulator(path_graph(5))
        with pytest.raises(QueryError):
            sim.fail_vertex(5)
        with pytest.raises(QueryError):
            sim.fail_vertex(-1)

    def test_fail_unknown_edge_rejected(self):
        sim = NetworkSimulator(path_graph(5))
        with pytest.raises(QueryError):
            sim.fail_edge(0, 2)

    def test_ground_truth_is_a_copy(self):
        sim = NetworkSimulator(path_graph(5))
        sim.fail_vertex(2)
        truth = sim.ground_truth()
        truth.vertices.add(3)
        assert sim.ground_truth().vertices == {2}

    def test_apply_event_dispatch(self):
        from repro.chaos import ChaosEvent

        g = grid_graph(3, 3)
        sim = NetworkSimulator(g)
        sim.apply_event(ChaosEvent(kind="fail_vertex", vertex=4))
        sim.apply_event(ChaosEvent(kind="fail_edge", edge=(0, 1)))
        assert sim.ground_truth().vertices == {4}
        assert sim.ground_truth().edges == {(0, 1)}
        sim.apply_event(ChaosEvent(kind="recover_vertex", vertex=4))
        sim.apply_event(ChaosEvent(kind="recover_edge", edge=(0, 1)))
        assert sim.awareness() == 1.0
        cut = ((0, 1), (3, 4))
        sim.apply_event(ChaosEvent(kind="partition", edges=cut))
        assert sim.ground_truth().edges == set(cut)
        sim.apply_event(ChaosEvent(kind="heal_partition", edges=cut))
        assert sim.ground_truth().edges == set()

    def test_apply_event_rejects_send_and_unknown(self):
        from repro.chaos import ChaosEvent

        sim = NetworkSimulator(path_graph(5))
        with pytest.raises(QueryError):
            sim.apply_event(ChaosEvent(kind="send", s=0, t=1))


class TestLossyPropagation:
    def test_total_loss_learns_nothing(self):
        g = grid_graph(5, 5)
        sim = NetworkSimulator(g, probe_on_failure=False)
        sim.fail_vertex(12)
        sim.view(11).vertices.add(12)  # one witness, links all lossy
        assert sim.propagate(rounds=5, drop_probability=1.0) == 0
        assert all(
            12 not in sim.view(u).vertices
            for u in g.vertices()
            if u not in (11, 12)
        )

    def test_partial_loss_slows_flooding(self):
        def awareness_after(drop):
            sim = NetworkSimulator(cycle_graph(20), probe_on_failure=False)
            sim.fail_vertex(10)
            sim.view(9).vertices.add(10)
            sim.propagate(rounds=4, drop_probability=drop, rng=7)
            return sim.awareness()

        assert awareness_after(0.9) < awareness_after(0.0)

    def test_lossy_flood_is_seeded(self):
        def run(seed):
            sim = NetworkSimulator(grid_graph(4, 4), probe_on_failure=False)
            sim.fail_vertex(5)
            sim.view(4).vertices.add(5)
            sim.propagate(rounds=3, drop_probability=0.5, rng=seed)
            return {
                u: frozenset(sim.view(u).vertices) for u in range(16)
            }

        assert run(3) == run(3)

    def test_bad_drop_probability_rejected(self):
        sim = NetworkSimulator(path_graph(5))
        with pytest.raises(ValueError):
            sim.propagate(drop_probability=1.5)

    def test_lossless_default_unchanged(self):
        sim = NetworkSimulator(cycle_graph(12))
        sim.fail_vertex(6)
        sim.propagate(rounds=12)
        assert sim.awareness() == 1.0


class TestProbing:
    def test_neighbors_learn_on_failure(self):
        g = grid_graph(5, 5)
        sim = NetworkSimulator(g)
        sim.fail_vertex(12)
        for u in g.neighbors(12):
            assert 12 in sim.view(u).vertices
        assert 12 not in sim.view(0).vertices  # distant router unaware

    def test_silent_failure_mode(self):
        g = grid_graph(5, 5)
        sim = NetworkSimulator(g, probe_on_failure=False)
        sim.fail_vertex(12)
        assert all(12 not in sim.view(u).vertices for u in g.vertices() if u != 12)


class TestPropagation:
    def test_flooding_increases_awareness(self):
        sim = NetworkSimulator(grid_graph(6, 6))
        sim.fail_vertex(14)
        before = sim.awareness()
        sim.propagate(rounds=2)
        after = sim.awareness()
        assert after > before

    def test_flooding_saturates(self):
        sim = NetworkSimulator(cycle_graph(12))
        sim.fail_vertex(6)
        sim.propagate(rounds=12)
        assert sim.awareness() == 1.0
        assert sim.propagate(rounds=1) == 0  # nothing left to learn

    def test_awareness_trivial_cases(self):
        sim = NetworkSimulator(path_graph(4))
        assert sim.awareness() == 1.0  # no failures


class TestReroutingAroundFailures:
    def test_packet_avoids_known_failure(self):
        g = cycle_graph(16)
        sim = NetworkSimulator(g)
        sim.fail_vertex(4)
        sim.propagate(rounds=16)  # everyone knows
        report = sim.send_packet(0, 8)
        assert report.delivered
        assert 4 not in report.route
        assert report.hops == 8  # forced the long way around

    def test_silent_failure_discovered_mid_flight(self):
        g = path_graph(20)
        # a side branch so vertex 10's failure is discoverable yet fatal;
        # use a cycle instead so delivery remains possible
        g = cycle_graph(20)
        sim = NetworkSimulator(g, probe_on_failure=False)
        sim.fail_vertex(5)
        report = sim.send_packet(0, 10)
        assert report.delivered
        assert 5 not in report.route
        assert report.discoveries >= 1  # learned the hard way
        assert report.requeries >= 2  # replanned after discovery

    def test_failed_link_rerouted(self):
        g = grid_graph(6, 6)
        sim = NetworkSimulator(g)
        sim.fail_edge(0, 1)
        report = sim.send_packet(0, 5)
        assert report.delivered
        assert (0, 1) not in set(
            (min(a, b), max(a, b)) for a, b in zip(report.route, report.route[1:])
        )

    def test_route_never_crosses_true_failures(self):
        g = grid_graph(7, 7)
        sim = NetworkSimulator(g, probe_on_failure=False)
        for v in (24, 25, 17):
            sim.fail_vertex(v)
        report = sim.send_packet(0, 48)
        assert report.delivered
        assert not set(report.route) & {24, 25, 17}

    def test_undeliverable_reported(self):
        g = grid_graph(5, 5)
        sim = NetworkSimulator(g)
        for v in (10, 11, 12, 13, 14):  # a full wall
            sim.fail_vertex(v)
        report = sim.send_packet(0, 24)
        assert not report.delivered

    def test_recovery_restores_delivery(self):
        g = path_graph(10)
        sim = NetworkSimulator(g)
        sim.fail_vertex(5)
        assert not sim.send_packet(0, 9).delivered
        sim.recover_vertex(5)
        assert sim.send_packet(0, 9).delivered

    def test_recover_edge(self):
        g = path_graph(6)
        sim = NetworkSimulator(g)
        sim.fail_edge(2, 3)
        assert not sim.send_packet(0, 5).delivered
        sim.recover_edge(2, 3)
        assert sim.send_packet(0, 5).delivered

    def test_knowledge_piggybacks_to_destination(self):
        g = cycle_graph(16)
        sim = NetworkSimulator(g)
        sim.fail_vertex(4)
        report = sim.send_packet(0, 8)
        assert report.delivered
        # the destination now knows about the failure without flooding
        assert 4 in sim.view(8).vertices

    def test_ttl_guard(self):
        g = grid_graph(4, 4)
        sim = NetworkSimulator(g)
        with pytest.raises(RoutingError):
            sim.send_packet(0, 15, ttl=1)
