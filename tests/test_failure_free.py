"""Tests for the failure-free (1+eps) labeling scheme (Section 2.1 overview)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ExactRecomputeOracle
from repro.exceptions import LabelingError
from repro.graphs import Graph
from repro.graphs.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
)
from repro.labeling import FailureFreeLabeling


class TestConstruction:
    def test_bad_epsilon(self):
        with pytest.raises(LabelingError):
            FailureFreeLabeling(path_graph(4), epsilon=0)

    def test_empty_graph(self):
        with pytest.raises(LabelingError):
            FailureFreeLabeling(Graph(0), epsilon=1)

    def test_c_formula(self):
        # c = max(0, ceil(log2(2/eps)))
        assert FailureFreeLabeling(path_graph(8), epsilon=2.0).c == 0
        assert FailureFreeLabeling(path_graph(8), epsilon=1.0).c == 1
        assert FailureFreeLabeling(path_graph(8), epsilon=0.5).c == 2

    def test_label_contains_nearest_net_point(self):
        g = grid_graph(6, 6)
        scheme = FailureFreeLabeling(g, epsilon=1.0)
        label = scheme.label(14)
        for i in scheme.levels():
            point, dist = label.nearest_point(i)
            assert dist < 2 ** max(i - scheme.c, 0) or dist == 0

    def test_label_distances_are_exact(self):
        from repro.graphs import bfs_distances

        g = cycle_graph(20)
        scheme = FailureFreeLabeling(g, epsilon=1.0)
        true_dist = bfs_distances(g, 3)
        label = scheme.label(3)
        for ball in label.balls.values():
            for point, dist in ball.items():
                assert dist == true_dist[point]


class TestQueries:
    def test_same_vertex(self):
        scheme = FailureFreeLabeling(path_graph(8), epsilon=1.0)
        assert scheme.query(3, 3) == 0

    def test_disconnected_returns_inf(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        scheme = FailureFreeLabeling(g, epsilon=1.0)
        assert math.isinf(scheme.query(0, 3))

    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0, 4.0])
    def test_stretch_bound_all_pairs_grid(self, epsilon):
        g = grid_graph(7, 7)
        scheme = FailureFreeLabeling(g, epsilon=epsilon)
        exact = ExactRecomputeOracle(g)
        for s in range(0, 49, 5):
            for t in range(49):
                if s == t:
                    continue
                d_true = exact.query(s, t)
                d_hat = scheme.query(s, t)
                assert d_true <= d_hat <= (1 + epsilon) * d_true

    def test_stretch_bound_all_pairs_cycle(self):
        g = cycle_graph(40)
        scheme = FailureFreeLabeling(g, epsilon=0.5)
        exact = ExactRecomputeOracle(g)
        for s in range(0, 40, 4):
            for t in range(40):
                if s == t:
                    continue
                d_true = exact.query(s, t)
                assert d_true <= scheme.query(s, t) <= 1.5 * d_true

    def test_decoder_uses_labels_only(self):
        g = path_graph(32)
        scheme = FailureFreeLabeling(g, epsilon=1.0)
        label_a, label_b = scheme.label(2), scheme.label(29)
        # query from detached labels (no scheme/graph access)
        d = FailureFreeLabeling.query_from_labels(label_a, label_b)
        assert 27 <= d <= 2 * 27

    def test_build_all_labels_size(self):
        g = path_graph(32)
        scheme = FailureFreeLabeling(g, epsilon=1.0)
        labels = scheme.build_all_labels()
        assert len(labels) == 32
        assert all(lbl.size_entries() > 0 for lbl in labels.values())


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 60), st.integers(0, 10**6))
def test_stretch_on_random_trees_property(n, seed):
    g = random_tree(n, seed)
    scheme = FailureFreeLabeling(g, epsilon=1.0)
    exact = ExactRecomputeOracle(g)
    s, t = 0, n - 1
    d_true = exact.query(s, t)
    d_hat = scheme.query(s, t)
    assert d_true <= d_hat <= 2 * d_true
