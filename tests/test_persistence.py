"""Tests for the on-disk label database."""

import io
import math
import struct
import zlib

import pytest

from repro.baselines import ExactRecomputeOracle
from repro.exceptions import EncodingError, LabelCorruptionError, QueryError
from repro.graphs.generators import cycle_graph, grid_graph
from repro.labeling import ForbiddenSetLabeling
from repro.oracle.persistence import LabelDatabase, save_labels


@pytest.fixture(scope="module")
def database(tmp_path_factory):
    g = grid_graph(6, 6)
    scheme = ForbiddenSetLabeling(g, epsilon=1.0)
    path = tmp_path_factory.mktemp("db") / "labels.fsdl"
    size = save_labels(scheme, path)
    assert size == path.stat().st_size
    return g, LabelDatabase.load(path)


class TestRoundtrip:
    def test_header_fields(self, database):
        g, db = database
        assert db.num_vertices == 36
        assert db.epsilon == 1.0
        assert db.c == 3

    def test_queries_match_live_scheme(self, database):
        g, db = database
        exact = ExactRecomputeOracle(g)
        for s, t, faults in [(0, 35, []), (0, 35, [14, 21]), (5, 30, [17])]:
            d_true = exact.query(s, t, vertex_faults=faults)
            d_hat = db.query(s, t, vertex_faults=faults).distance
            if math.isinf(d_true):
                assert math.isinf(d_hat)
            else:
                assert d_true <= d_hat <= 2 * d_true

    def test_edge_faults(self, database):
        g, db = database
        assert db.query(0, 1, edge_faults=[(0, 1)]).distance > 1

    def test_connectivity(self, database):
        _, db = database
        assert db.connectivity(0, 35)
        wall = [6 * 2 + y for y in range(6)]
        # wall is a column of the 6x6 grid: vertices 12..17
        assert not db.connectivity(0, 35, vertex_faults=wall)

    def test_size_bits_positive(self, database):
        _, db = database
        assert db.size_bits() > 0

    def test_vertex_range_checked(self, database):
        _, db = database
        with pytest.raises(QueryError):
            db.label(99)


class TestWeightedScheme:
    def test_weighted_labels_roundtrip_through_database(self):
        import random

        from repro.graphs.weighted import (
            WeightedGraph,
            weighted_distances_avoiding,
        )
        from repro.labeling.weighted import WeightedForbiddenSetLabeling

        base = grid_graph(5, 5)
        rng = random.Random(4)
        g = WeightedGraph(base.num_vertices)
        for u, v in base.edges():
            g.add_edge(u, v, rng.randint(1, 4))
        scheme = WeightedForbiddenSetLabeling(g, epsilon=1.0)
        buffer = io.BytesIO()
        save_labels(scheme, buffer)
        db = LabelDatabase.load(io.BytesIO(buffer.getvalue()))
        for s, t, faults in [(0, 24, []), (0, 24, [12]), (4, 20, [10, 14])]:
            d_true = weighted_distances_avoiding(g, s, faults).get(t, math.inf)
            d_hat = db.query(s, t, vertex_faults=faults).distance
            if math.isinf(d_true):
                assert math.isinf(d_hat)
            else:
                assert d_true <= d_hat <= scheme.stretch_bound() * d_true


class TestFileFormat:
    def test_in_memory_roundtrip(self):
        g = cycle_graph(12)
        scheme = ForbiddenSetLabeling(g, epsilon=2.0)
        buffer = io.BytesIO()
        save_labels(scheme, buffer)
        db = LabelDatabase.load(io.BytesIO(buffer.getvalue()))
        assert db.query(0, 6).distance == 6

    def test_bad_magic_rejected(self):
        with pytest.raises(EncodingError):
            LabelDatabase.load(io.BytesIO(b"NOPE" + b"\x00" * 32))

    def test_truncated_rejected(self):
        g = cycle_graph(8)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        buffer = io.BytesIO()
        save_labels(scheme, buffer)
        blob = buffer.getvalue()
        with pytest.raises(EncodingError):
            LabelDatabase.load(io.BytesIO(blob[: len(blob) // 2]))

    def test_unsupported_version(self):
        blob = b"FSDL" + bytes([99]) + b"\x00" * 24
        with pytest.raises(EncodingError):
            LabelDatabase.load(io.BytesIO(blob))

    @pytest.mark.parametrize("cut", [0, 3, 4, 5, 7, 20, 28])
    def test_short_header_raises_encoding_error(self, cut):
        # a truncated header must surface as EncodingError, never as a
        # raw struct.error / IndexError
        g = cycle_graph(8)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        for version in (1, 2):
            buffer = io.BytesIO()
            save_labels(scheme, buffer, version=version)
            with pytest.raises(EncodingError):
                LabelDatabase.load(io.BytesIO(buffer.getvalue()[:cut]))

    def test_unwritable_version_rejected(self):
        g = cycle_graph(8)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        with pytest.raises(EncodingError):
            save_labels(scheme, io.BytesIO(), version=3)


def _v2_blob(graph=None, epsilon=1.0):
    scheme = ForbiddenSetLabeling(graph or grid_graph(4, 4), epsilon=epsilon)
    buffer = io.BytesIO()
    save_labels(scheme, buffer, version=2)
    return buffer.getvalue()


# v2 layout: magic(4) version(1) header(20) header_crc(4), then per
# entry length(4) crc(4) data(length)
_FIRST_ENTRY = 29
_FIRST_DATA = _FIRST_ENTRY + 8


class TestV2Integrity:
    def test_version_attribute(self):
        db = LabelDatabase.load(io.BytesIO(_v2_blob()))
        assert db.version == 2
        assert db.quarantined == {}
        assert db.verify() == []

    def test_header_corruption_detected(self):
        blob = bytearray(_v2_blob())
        blob[10] ^= 0x40  # inside epsilon
        with pytest.raises(LabelCorruptionError):
            LabelDatabase.load(io.BytesIO(bytes(blob)))

    def test_label_corruption_strict_fails_fast(self):
        blob = bytearray(_v2_blob())
        blob[_FIRST_DATA] ^= 0x01
        with pytest.raises(LabelCorruptionError):
            LabelDatabase.load(io.BytesIO(bytes(blob)), strict=True)

    def test_label_corruption_quarantined_lazily(self):
        blob = bytearray(_v2_blob())
        blob[_FIRST_DATA] ^= 0x01  # damage label 0 only
        db = LabelDatabase.load(io.BytesIO(bytes(blob)), strict=False)
        assert list(db.quarantined) == [0]
        assert db.verify() == [0]
        # untouched labels still answer, identically to the pristine db
        pristine = LabelDatabase.load(io.BytesIO(_v2_blob()))
        assert (
            db.query(5, 10).distance == pristine.query(5, 10).distance
        )
        # any query touching the quarantined label raises
        with pytest.raises(LabelCorruptionError):
            db.label(0)
        with pytest.raises(LabelCorruptionError):
            db.query(0, 10)
        with pytest.raises(LabelCorruptionError):
            db.query(5, 10, vertex_faults=[0])

    def test_lying_length_field_rejected_before_allocation(self):
        blob = bytearray(_v2_blob())
        blob[_FIRST_ENTRY:_FIRST_ENTRY + 4] = struct.pack("<I", 0xFFFFFFF0)
        with pytest.raises(EncodingError):
            LabelDatabase.load(io.BytesIO(bytes(blob)))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(EncodingError):
            LabelDatabase.load(io.BytesIO(_v2_blob() + b"\x00"))

    def test_crc_actually_stored(self):
        blob = _v2_blob()
        header_crc = struct.unpack("<I", blob[25:29])[0]
        assert header_crc == zlib.crc32(blob[:25])
        length = struct.unpack("<I", blob[29:33])[0]
        entry_crc = struct.unpack("<I", blob[33:37])[0]
        assert entry_crc == zlib.crc32(blob[29:33] + blob[37:37 + length])


class TestV1Compatibility:
    def test_v1_still_loads_and_answers_identically(self):
        g = grid_graph(5, 5)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        v1, v2 = io.BytesIO(), io.BytesIO()
        save_labels(scheme, v1, version=1)
        save_labels(scheme, v2, version=2)
        assert v1.getvalue()[4] == 1 and v2.getvalue()[4] == 2
        db1 = LabelDatabase.load(io.BytesIO(v1.getvalue()))
        db2 = LabelDatabase.load(io.BytesIO(v2.getvalue()))
        assert db1.version == 1
        assert db1.num_vertices == db2.num_vertices
        assert db1.size_bits() == db2.size_bits()
        for s, t, faults in [(0, 24, []), (0, 24, [12]), (4, 20, [10, 14])]:
            assert (
                db1.query(s, t, vertex_faults=faults).distance
                == db2.query(s, t, vertex_faults=faults).distance
            )

    def test_v1_byte_layout_matches_seed_format(self):
        # the legacy writer's exact framing: magic, version, <I n,
        # <d epsilon, <II c top_level, then length-prefixed labels
        g = cycle_graph(6)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        buffer = io.BytesIO()
        save_labels(scheme, buffer, version=1)
        blob = buffer.getvalue()
        assert blob[:4] == b"FSDL"
        (n,) = struct.unpack_from("<I", blob, 5)
        assert n == 6
        (epsilon,) = struct.unpack_from("<d", blob, 9)
        assert epsilon == 1.0

    def test_v1_fsck_relies_on_decode_only(self):
        g = cycle_graph(8)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        buffer = io.BytesIO()
        save_labels(scheme, buffer, version=1)
        db = LabelDatabase.load(io.BytesIO(buffer.getvalue()))
        assert db.verify() == []
