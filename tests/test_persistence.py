"""Tests for the on-disk label database."""

import io
import math

import pytest

from repro.baselines import ExactRecomputeOracle
from repro.exceptions import EncodingError, QueryError
from repro.graphs.generators import cycle_graph, grid_graph
from repro.labeling import ForbiddenSetLabeling
from repro.oracle.persistence import LabelDatabase, save_labels


@pytest.fixture(scope="module")
def database(tmp_path_factory):
    g = grid_graph(6, 6)
    scheme = ForbiddenSetLabeling(g, epsilon=1.0)
    path = tmp_path_factory.mktemp("db") / "labels.fsdl"
    size = save_labels(scheme, path)
    assert size == path.stat().st_size
    return g, LabelDatabase.load(path)


class TestRoundtrip:
    def test_header_fields(self, database):
        g, db = database
        assert db.num_vertices == 36
        assert db.epsilon == 1.0
        assert db.c == 3

    def test_queries_match_live_scheme(self, database):
        g, db = database
        exact = ExactRecomputeOracle(g)
        for s, t, faults in [(0, 35, []), (0, 35, [14, 21]), (5, 30, [17])]:
            d_true = exact.query(s, t, vertex_faults=faults)
            d_hat = db.query(s, t, vertex_faults=faults).distance
            if math.isinf(d_true):
                assert math.isinf(d_hat)
            else:
                assert d_true <= d_hat <= 2 * d_true

    def test_edge_faults(self, database):
        g, db = database
        assert db.query(0, 1, edge_faults=[(0, 1)]).distance > 1

    def test_connectivity(self, database):
        _, db = database
        assert db.connectivity(0, 35)
        wall = [6 * 2 + y for y in range(6)]
        # wall is a column of the 6x6 grid: vertices 12..17
        assert not db.connectivity(0, 35, vertex_faults=wall)

    def test_size_bits_positive(self, database):
        _, db = database
        assert db.size_bits() > 0

    def test_vertex_range_checked(self, database):
        _, db = database
        with pytest.raises(QueryError):
            db.label(99)


class TestWeightedScheme:
    def test_weighted_labels_roundtrip_through_database(self):
        import random

        from repro.graphs.weighted import (
            WeightedGraph,
            weighted_distances_avoiding,
        )
        from repro.labeling.weighted import WeightedForbiddenSetLabeling

        base = grid_graph(5, 5)
        rng = random.Random(4)
        g = WeightedGraph(base.num_vertices)
        for u, v in base.edges():
            g.add_edge(u, v, rng.randint(1, 4))
        scheme = WeightedForbiddenSetLabeling(g, epsilon=1.0)
        buffer = io.BytesIO()
        save_labels(scheme, buffer)
        db = LabelDatabase.load(io.BytesIO(buffer.getvalue()))
        for s, t, faults in [(0, 24, []), (0, 24, [12]), (4, 20, [10, 14])]:
            d_true = weighted_distances_avoiding(g, s, faults).get(t, math.inf)
            d_hat = db.query(s, t, vertex_faults=faults).distance
            if math.isinf(d_true):
                assert math.isinf(d_hat)
            else:
                assert d_true <= d_hat <= scheme.stretch_bound() * d_true


class TestFileFormat:
    def test_in_memory_roundtrip(self):
        g = cycle_graph(12)
        scheme = ForbiddenSetLabeling(g, epsilon=2.0)
        buffer = io.BytesIO()
        save_labels(scheme, buffer)
        db = LabelDatabase.load(io.BytesIO(buffer.getvalue()))
        assert db.query(0, 6).distance == 6

    def test_bad_magic_rejected(self):
        with pytest.raises(EncodingError):
            LabelDatabase.load(io.BytesIO(b"NOPE" + b"\x00" * 32))

    def test_truncated_rejected(self):
        g = cycle_graph(8)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        buffer = io.BytesIO()
        save_labels(scheme, buffer)
        blob = buffer.getvalue()
        with pytest.raises(EncodingError):
            LabelDatabase.load(io.BytesIO(blob[: len(blob) // 2]))

    def test_unsupported_version(self):
        blob = b"FSDL" + bytes([99]) + b"\x00" * 24
        with pytest.raises(EncodingError):
            LabelDatabase.load(io.BytesIO(blob))
