"""Run the doctest examples embedded in public modules."""

import doctest

import pytest

import repro
import repro.graphs.graph
import repro.graphs.weighted
import repro.labeling.failure_free
import repro.labeling.params
import repro.labeling.scheme
import repro.labeling.weighted
import repro.nets.hierarchy
import repro.oracle.persistence
import repro.routing.scheme
import repro.util.bitio
import repro.util.pqueue

MODULES = [
    repro,
    repro.graphs.graph,
    repro.graphs.weighted,
    repro.labeling.failure_free,
    repro.labeling.params,
    repro.labeling.scheme,
    repro.labeling.weighted,
    repro.nets.hierarchy,
    repro.oracle.persistence,
    repro.routing.scheme,
    repro.util.bitio,
    repro.util.pqueue,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{module.__name__}: {result.failed} doctest failures"
    assert result.attempted > 0
