"""Unit and property tests for the kernel's data-structure layer.

Four contracts beneath the differential harness:

* **interning idempotence** — re-interning a label is a no-op: same
  fragment object, same handle, no arena growth; fragment flat arrays
  faithfully replay the label's (level, edge) scan order.
* **CSR round-trip** — the engine's cached CSR sketch, re-expanded to
  an adjacency mapping, equals :func:`build_sketch_graph`'s dict sketch
  exactly — including per-vertex neighbour order, which downstream
  Dijkstra tie-breaking depends on.
* **indexed-heap property** — :class:`DenseMinHeap` replayed against
  :class:`repro.util.pqueue.IndexedMinHeap` (the decoder's reference
  heap) on random push/decrease/pop scripts: identical pop sequences,
  identical decrease-key outcomes.
* **numpy == stdlib** — both kernel paths produce byte-equal cache
  entries for the same queries, not merely equal answers.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import generators as gen
from repro.labeling import FaultSet, ForbiddenSetLabeling, build_sketch_graph
from repro.labeling.kernel import (
    HAVE_NUMPY,
    DenseMinHeap,
    KernelDecoder,
    LabelArena,
)
from repro.util.pqueue import IndexedMinHeap


@pytest.fixture(scope="module")
def labeled():
    graph = gen.road_like_graph(4, 4, seed=3)
    scheme = ForbiddenSetLabeling(graph, 1.0)
    labels = [scheme.label(v) for v in graph.vertices()]
    return graph, labels


# -- interning ---------------------------------------------------------------


class TestInterning:
    def test_intern_is_idempotent(self, labeled):
        _, labels = labeled
        arena = LabelArena()
        first = arena.intern(labels[0])
        again = arena.intern(labels[0])
        assert again is first
        assert len(arena) == 1
        other = arena.intern(labels[1])
        assert other is not first
        assert other.handle != first.handle
        assert len(arena) == 2

    def test_fragment_replays_label_scan_order(self, labeled):
        _, labels = labeled
        arena = LabelArena()
        frag = arena.intern(labels[3])
        label = labels[3]
        expected = []
        for level in sorted(label.levels):
            level_label = label.levels[level]
            row = frag.row_of(level)
            for (x, y), w in level_label.graph_edges.items():
                expected.append((x, y, w, row))
            for (x, y), w in level_label.edges.items():
                expected.append((x, y, w, row))
        got = list(zip(frag.ex, frag.ey, frag.ew, frag.lvl))
        assert got == expected
        assert frag.edges_listed == len(expected)
        assert frag.num_levels == len(label.levels)

    def test_scheme_mismatch_raises(self, labeled):
        _, labels = labeled
        other_scheme = ForbiddenSetLabeling(gen.grid_graph(4, 4), 0.5)
        other = other_scheme.label(0)
        arena = LabelArena()
        arena.intern(labels[0])
        if (other.c, other.top_level) != (labels[0].c, labels[0].top_level):
            with pytest.raises(Exception, match="different schemes"):
                arena.intern(other)

    def test_reset_bumps_generation_and_empties(self, labeled):
        _, labels = labeled
        arena = LabelArena()
        arena.intern(labels[0])
        generation = arena.generation
        arena.reset()
        assert arena.generation == generation + 1
        assert len(arena) == 0


# -- CSR round-trip ----------------------------------------------------------


def csr_to_adjacency(vlist, indptr, nbr, wts):
    """Expand the engine's CSR arrays back into the legacy dict shape."""
    adjacency = {}
    for i, x in enumerate(vlist):
        adjacency[x] = [
            (vlist[nbr[k]], wts[k]) for k in range(indptr[i], indptr[i + 1])
        ]
    return adjacency


@pytest.mark.parametrize(
    "use_numpy", [False] + ([True] if HAVE_NUMPY else [])
)
class TestCsrRoundTrip:
    def test_matches_dict_sketch_graph(self, labeled, use_numpy):
        _, labels = labeled
        kern = KernelDecoder(use_numpy=use_numpy)
        rng = random.Random(0xC5)
        n = len(labels)
        for _ in range(25):
            s, t = rng.sample(range(n), 2)
            fault_v = rng.sample(
                [v for v in range(n) if v not in (s, t)], rng.randrange(0, 3)
            )
            faults = FaultSet(vertex_labels=[labels[f] for f in fault_v])
            expected = build_sketch_graph(labels[s], labels[t], faults)
            engine = kern._engine
            engine._scache.clear()  # isolate this query's entry
            kern.decode(labels[s], labels[t], faults)
            (entry,) = engine._scache.values()
            vlist, indptr, nbr, wts = entry[0], entry[1], entry[2], entry[3]
            got = csr_to_adjacency(vlist, indptr, nbr, wts)
            assert got == expected


# -- indexed heap ------------------------------------------------------------

heap_scripts = st.lists(
    st.tuples(
        st.sampled_from(["push", "decrease", "pop"]),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=1000),
    ),
    max_size=80,
)


@settings(max_examples=120, deadline=None)
@given(script=heap_scripts)
def test_dense_heap_matches_indexed_reference(script):
    dense = DenseMinHeap()
    dense.reset(32)
    reference = IndexedMinHeap()
    for op, item, key in script:
        if op == "push":
            if item not in reference:
                got = dense.push_or_decrease(item, key)
                reference.push(item, key)
                assert got is True
            else:
                assert dense.push_or_decrease(item, key) == (
                    key < reference.key(item)
                )
                reference.push_or_decrease(item, key)
        elif op == "decrease":
            if item in reference and key < reference.key(item):
                dense.decrease_key(item, key)
                reference.decrease_key(item, key)
        else:
            if len(reference):
                assert dense.pop() == reference.pop()
        assert len(dense) == len(reference)
        if item in reference:
            assert dense.key(item) == reference.key(item)
    while len(reference):
        assert dense.pop() == reference.pop()
    assert len(dense) == 0


def test_dense_heap_pop_order_matches_heapq():
    import heapq

    rng = random.Random(0x4EA9)
    for _ in range(20):
        items = rng.sample(range(64), rng.randrange(1, 33))
        keys = [rng.randrange(0, 50) for _ in items]
        dense = DenseMinHeap()
        dense.reset(64)
        reference = []
        for item, key in zip(items, keys):
            dense.push(item, key)
            heapq.heappush(reference, key)
        popped_keys = [dense.pop()[1] for _ in items]
        assert popped_keys == [heapq.heappop(reference) for _ in items]


# -- numpy path == stdlib path, down to the cache entries --------------------


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
def test_numpy_and_stdlib_cache_entries_byte_equal(labeled):
    _, labels = labeled
    np_kern = KernelDecoder(use_numpy=True)
    py_kern = KernelDecoder(use_numpy=False)
    rng = random.Random(0xB17E)
    n = len(labels)
    for _ in range(20):
        s, t = rng.sample(range(n), 2)
        fault_v = rng.sample(
            [v for v in range(n) if v not in (s, t)], rng.randrange(0, 3)
        )
        faults = FaultSet(vertex_labels=[labels[f] for f in fault_v])
        np_result = np_kern.decode(labels[s], labels[t], faults)
        py_result = py_kern.decode(labels[s], labels[t], faults)
        assert np_result == py_result
    np_entries = sorted(np_kern._engine._scache.items())
    py_entries = sorted(py_kern._engine._scache.items())
    assert repr(np_entries) == repr(py_entries)
