"""Tests for the label/scheme verifier — including corruption detection."""

import copy

import pytest

from repro.exceptions import LabelingError
from repro.graphs.generators import cycle_graph, grid_graph, path_graph
from repro.labeling import ForbiddenSetLabeling, LabelingOptions
from repro.labeling.verification import verify_label, verify_scheme


@pytest.fixture(scope="module")
def grid_setup():
    g = grid_graph(6, 6)
    scheme = ForbiddenSetLabeling(g, epsilon=1.0)
    return g, scheme


class TestVerifyScheme:
    def test_full_scheme_passes(self, grid_setup):
        g, scheme = grid_setup
        verify_scheme(g, scheme)

    def test_unit_scheme_passes_without_completeness(self):
        g = cycle_graph(24)
        scheme = ForbiddenSetLabeling(
            g, epsilon=1.0, options=LabelingOptions(low_level="unit")
        )
        verify_scheme(g, scheme)

    def test_path_scheme_passes(self):
        g = path_graph(40)
        scheme = ForbiddenSetLabeling(g, epsilon=2.0)
        verify_scheme(g, scheme, sample_vertices=[0, 20, 39])


class TestCorruptionDetection:
    """Every mutation of a valid label must be caught."""

    def _fresh(self, grid_setup):
        g, scheme = grid_setup
        label = copy.deepcopy(scheme.label(14))
        return g, scheme, label

    def _expect_failure(self, g, scheme, label):
        with pytest.raises(LabelingError):
            verify_label(
                g, label, scheme._builder.hierarchy, scheme.params
            )

    def test_wrong_distance(self, grid_setup):
        g, scheme, label = self._fresh(grid_setup)
        level = min(label.levels)
        point = next(p for p in label.levels[level].points if p != 14)
        label.levels[level].points[point] += 1
        self._expect_failure(g, scheme, label)

    def test_missing_owner(self, grid_setup):
        g, scheme, label = self._fresh(grid_setup)
        level = min(label.levels)
        del label.levels[level].points[14]
        self._expect_failure(g, scheme, label)

    def test_missing_point(self, grid_setup):
        g, scheme, label = self._fresh(grid_setup)
        level = min(label.levels)
        point = next(p for p in label.levels[level].points if p != 14)
        del label.levels[level].points[point]
        # also remove its edges so the point check (not the edge check) fires
        label.levels[level].edges = {
            e: w
            for e, w in label.levels[level].edges.items()
            if point not in e
        }
        self._expect_failure(g, scheme, label)

    def test_wrong_edge_weight(self, grid_setup):
        g, scheme, label = self._fresh(grid_setup)
        level = min(label.levels)
        edge = next(iter(label.levels[level].edges))
        label.levels[level].edges[edge] += 1
        self._expect_failure(g, scheme, label)

    def test_missing_edge(self, grid_setup):
        g, scheme, label = self._fresh(grid_setup)
        level = min(label.levels)
        edge = next(iter(label.levels[level].edges))
        del label.levels[level].edges[edge]
        self._expect_failure(g, scheme, label)

    def test_extra_bogus_point(self, grid_setup):
        g, scheme, label = self._fresh(grid_setup)
        top = max(label.levels)
        # a vertex that is not a net point at the top level
        net = scheme._builder.hierarchy.net(scheme.params.net_level(top))
        outsider = next(v for v in g.vertices() if v not in net and v != 14)
        from repro.graphs import bfs_distances

        label.levels[top].points[outsider] = bfs_distances(g, 14)[outsider]
        self._expect_failure(g, scheme, label)

    def test_missing_level(self, grid_setup):
        g, scheme, label = self._fresh(grid_setup)
        del label.levels[max(label.levels)]
        self._expect_failure(g, scheme, label)

    def test_unnormalized_edge(self, grid_setup):
        g, scheme, label = self._fresh(grid_setup)
        level = min(label.levels)
        (x, y), w = next(iter(label.levels[level].edges.items()))
        del label.levels[level].edges[(x, y)]
        label.levels[level].edges[(y, x)] = w
        self._expect_failure(g, scheme, label)
