"""Tests for the ``repro.lint`` static-analysis pass.

Covers: every RPL rule firing on a bad fixture and staying silent on
the matching good fixture, suppression-comment handling (justified,
unjustified, standalone, malformed), the JSON reporter schema, the CLI
subcommand, and the meta-test that the repo's own tree lints clean.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    LintEngine,
    lint_paths,
    render_json,
    render_text,
    rule_catalogue,
)
from repro.lint.engine import META_RULE_ID

ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

#: rule id -> (fixture stem, logical path the snippet is linted *as*).
#: The logical path puts each snippet in the scope where its rule is
#: active (e.g. RPL006/RPL008 only police library code).
CASES = {
    "RPL001": ("rpl001", "src/repro/analysis/sampler.py"),
    "RPL002": ("rpl002", "src/repro/analysis/timing.py"),
    "RPL003": ("rpl003", "src/repro/oracle/loader.py"),
    "RPL004": ("rpl004", "src/repro/labeling/decoder_fixture.py"),
    "RPL005": ("rpl005", "src/repro/service/defaults.py"),
    "RPL006": ("rpl006", "src/repro/graphs/checks.py"),
    "RPL007": ("rpl007", "src/repro/service/store_fixture.py"),
    "RPL008": ("rpl008", "src/repro/labeling/api.py"),
    "RPL009": ("rpl009", "src/repro/oracle/persistence_fixture.py"),
}

ENGINE = LintEngine()


# -- per-rule fixtures -------------------------------------------------------


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_bad_fixture_fires(rule_id):
    stem, logical = CASES[rule_id]
    findings = ENGINE.check_file(FIXTURES / f"{stem}_bad.py", logical=logical)
    assert findings, f"{rule_id} bad fixture produced no findings"
    assert {f.rule for f in findings} == {rule_id}, [f.render() for f in findings]


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_good_fixture_is_clean(rule_id):
    stem, logical = CASES[rule_id]
    findings = ENGINE.check_file(FIXTURES / f"{stem}_good.py", logical=logical)
    assert findings == [], [f.render() for f in findings]


def test_rpl001_allowed_in_rng_module():
    text = (FIXTURES / "rpl001_bad.py").read_text(encoding="utf-8")
    findings = ENGINE.check_source(text, logical="src/repro/util/rng.py")
    assert findings == [], [f.render() for f in findings]


def test_rpl004_allowed_in_params_module():
    text = (FIXTURES / "rpl004_bad.py").read_text(encoding="utf-8")
    findings = ENGINE.check_source(text, logical="src/repro/labeling/params.py")
    assert findings == [], [f.render() for f in findings]


def test_rpl006_ignores_scripts_outside_library():
    text = (FIXTURES / "rpl006_bad.py").read_text(encoding="utf-8")
    findings = ENGINE.check_source(text, logical="tools/some_script.py")
    assert [f.rule for f in findings] == []


def test_rpl009_allowed_in_fs_backend():
    """The RealFS backend is the one sanctioned raw-I/O module."""
    text = (FIXTURES / "rpl009_bad.py").read_text(encoding="utf-8")
    findings = ENGINE.check_source(text, logical="src/repro/durability/fs.py")
    assert findings == [], [f.render() for f in findings]


def test_rpl009_ignores_modules_outside_persistence_scope():
    text = (FIXTURES / "rpl009_bad.py").read_text(encoding="utf-8")
    findings = ENGINE.check_source(text, logical="src/repro/graphs/builders.py")
    assert findings == [], [f.render() for f in findings]


# -- suppressions ------------------------------------------------------------


def test_justified_suppression_silences_finding():
    findings = ENGINE.check_file(
        FIXTURES / "suppress_justified.py",
        logical="src/repro/analysis/suppressed.py",
    )
    assert findings == [], [f.render() for f in findings]


def test_unjustified_suppression_is_an_error_and_does_not_silence():
    findings = ENGINE.check_file(
        FIXTURES / "suppress_unjustified.py",
        logical="src/repro/analysis/suppressed.py",
    )
    rules = sorted(f.rule for f in findings)
    assert rules == [META_RULE_ID, "RPL001"], [f.render() for f in findings]


def test_standalone_suppression_targets_next_line():
    src = (
        '"""Doc."""\n'
        "import time\n"
        "# repro-lint: disable=RPL002 -- fixture exercising standalone comments\n"
        "STAMP = time.time()\n"
    )
    findings = ENGINE.check_source(src, logical="src/repro/x.py")
    assert findings == [], [f.render() for f in findings]


def test_malformed_directive_reports_meta_rule():
    src = '"""Doc."""\nX = 1  # repro-lint: disable=nonsense\n'
    findings = ENGINE.check_source(src, logical="src/repro/x.py")
    assert [f.rule for f in findings] == [META_RULE_ID]


def test_directive_inside_string_is_not_a_suppression():
    src = (
        '"""Doc."""\n'
        'NOTE = "# repro-lint: disable=RPL001"\n'
        "import random\n"
    )
    findings = ENGINE.check_source(src, logical="src/repro/x.py")
    assert [f.rule for f in findings] == ["RPL001"]


def test_unparseable_file_yields_meta_finding():
    findings = ENGINE.check_source("def broken(:\n", logical="src/repro/x.py")
    assert [f.rule for f in findings] == [META_RULE_ID]
    assert "does not parse" in findings[0].message


# -- engine configuration ----------------------------------------------------


def test_select_restricts_rules():
    engine = LintEngine(select=["RPL001"])
    findings = engine.check_file(
        FIXTURES / "rpl005_bad.py", logical="src/repro/service/defaults.py"
    )
    assert findings == []


def test_select_rejects_unknown_rule_ids():
    with pytest.raises(ValueError):
        LintEngine(select=["RPL999"])


def test_rule_catalogue_covers_all_ids():
    ids = [entry["id"] for entry in rule_catalogue()]
    assert ids == sorted(CASES)
    for entry in rule_catalogue():
        assert entry["summary"] and entry["contract"]


# -- reporters ---------------------------------------------------------------


def test_json_reporter_schema():
    result = lint_paths([FIXTURES / "rpl001_bad.py"])
    doc = json.loads(render_json(result))
    assert doc["version"] == 1
    assert doc["ok"] is False
    assert doc["files_scanned"] == 1
    assert doc["counts"].get("RPL001", 0) >= 1
    assert doc["findings"], "expected at least one finding in the JSON report"
    for finding in doc["findings"]:
        assert set(finding) == {"path", "line", "col", "rule", "severity", "message"}


def test_text_reporter_mentions_rule_and_location():
    result = lint_paths([FIXTURES / "rpl001_bad.py"])
    text = render_text(result)
    assert "RPL001" in text
    assert "rpl001_bad.py" in text


def test_report_is_deterministic_across_runs():
    first = render_json(lint_paths([FIXTURES]))
    second = render_json(lint_paths([FIXTURES]))
    assert first == second


# -- the repo's own tree -----------------------------------------------------


def test_repo_tree_lints_clean():
    result = lint_paths([ROOT / "src" / "repro", ROOT / "tools"])
    assert result.ok, render_text(result)
    assert result.files_scanned > 50


def test_scenario_package_is_in_scope_and_clean():
    result = lint_paths([ROOT / "src" / "repro" / "scenario"])
    assert result.ok, render_text(result)
    assert result.files_scanned >= 5  # trace, compile, runner, search, init


# -- CLI ---------------------------------------------------------------------


def test_cli_lint_clean_tree_exits_zero(capsys):
    code = cli_main(["lint", str(ROOT / "src" / "repro"), str(ROOT / "tools")])
    assert code == 0
    assert "OK" in capsys.readouterr().out


def test_cli_lint_bad_fixture_exits_nonzero(capsys):
    code = cli_main(["lint", str(FIXTURES / "rpl001_bad.py")])
    assert code == 1
    assert "RPL001" in capsys.readouterr().out


def test_cli_lint_json_format(capsys):
    code = cli_main(["lint", str(FIXTURES / "rpl001_bad.py"), "--format", "json"])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is False


def test_cli_lint_missing_path_errors(capsys):
    code = cli_main(["lint", "/no/such/path"])
    assert code == 1
    assert "error: no such path" in capsys.readouterr().err


def test_cli_lint_unknown_select_errors(capsys):
    code = cli_main(["lint", str(FIXTURES), "--select", "RPL999"])
    assert code == 1
    assert "unknown rule ids" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    code = cli_main(["lint", "--list-rules"])
    assert code == 0
    out = capsys.readouterr().out
    for rule_id in sorted(CASES):
        assert rule_id in out
