"""Unit tests for the bit-level I/O used by label encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import EncodingError
from repro.util.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_empty_writer_produces_no_bytes(self):
        assert BitWriter().getvalue() == b""

    def test_single_bit_padding(self):
        w = BitWriter()
        w.write_bit(1)
        assert w.getvalue() == b"\x80"
        assert w.bit_length == 1

    def test_write_bits_msb_first(self):
        w = BitWriter()
        w.write_bits(0b1011, 4)
        assert w.getvalue() == b"\xb0"

    def test_write_bits_rejects_overflow(self):
        w = BitWriter()
        with pytest.raises(EncodingError):
            w.write_bits(16, 4)

    def test_write_bits_rejects_negative(self):
        w = BitWriter()
        with pytest.raises(EncodingError):
            w.write_bits(-1, 4)

    def test_zero_width_zero_value_ok(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert w.bit_length == 0

    def test_gamma_rejects_nonpositive(self):
        w = BitWriter()
        with pytest.raises(EncodingError):
            w.write_gamma(0)

    def test_unary_roundtrip(self):
        w = BitWriter()
        for value in (0, 1, 5, 13):
            w.write_unary(value)
        r = BitReader(w.getvalue())
        assert [r.read_unary() for _ in range(4)] == [0, 1, 5, 13]


class TestBitReader:
    def test_read_past_end_raises(self):
        r = BitReader(b"")
        with pytest.raises(EncodingError):
            r.read_bit()

    def test_fixed_width_roundtrip(self):
        w = BitWriter()
        w.write_bits(12345, 20)
        w.write_bits(7, 3)
        r = BitReader(w.getvalue())
        assert r.read_bits(20) == 12345
        assert r.read_bits(3) == 7

    def test_gamma_small_values(self):
        w = BitWriter()
        for value in range(1, 50):
            w.write_gamma(value)
        r = BitReader(w.getvalue())
        assert [r.read_gamma() for _ in range(49)] == list(range(1, 50))


@given(st.lists(st.integers(min_value=1, max_value=10**9), max_size=200))
def test_gamma_roundtrip_property(values):
    w = BitWriter()
    for value in values:
        w.write_gamma(value)
    r = BitReader(w.getvalue())
    assert [r.read_gamma() for _ in values] == values


@given(st.lists(st.integers(min_value=0, max_value=10**9), max_size=200))
def test_gamma_nonneg_roundtrip_property(values):
    w = BitWriter()
    for value in values:
        w.write_gamma_nonneg(value)
    r = BitReader(w.getvalue())
    assert [r.read_gamma_nonneg() for _ in values] == values


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=63), st.integers(6, 12)),
        max_size=100,
    )
)
def test_mixed_fixed_width_roundtrip_property(pairs):
    w = BitWriter()
    for value, width in pairs:
        w.write_bits(value, width)
    r = BitReader(w.getvalue())
    assert [r.read_bits(width) for _, width in pairs] == [v for v, _ in pairs]


def test_gamma_code_length_is_logarithmic():
    # gamma(v) takes 2*floor(log2 v) + 1 bits
    for value in (1, 2, 3, 7, 8, 1023, 1024):
        w = BitWriter()
        w.write_gamma(value)
        assert w.bit_length == 2 * (value.bit_length() - 1) + 1
