"""Unit tests for BFS/Dijkstra primitives, cross-checked against networkx."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    bfs_distances,
    bfs_distances_avoiding,
    bfs_first_hops,
    bfs_parents,
    dijkstra,
    shortest_path,
    to_networkx,
)
from repro.graphs.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
)
from repro.graphs.traversal import dijkstra_with_paths, eccentricity


class TestBfs:
    def test_distances_on_path(self):
        g = path_graph(5)
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_radius_bound(self):
        g = path_graph(10)
        dist = bfs_distances(g, 0, radius=3)
        assert set(dist) == {0, 1, 2, 3}

    def test_disconnected_component_not_reached(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        assert set(bfs_distances(g, 0)) == {0, 1}

    def test_matches_networkx_on_grid(self):
        g = grid_graph(5, 7)
        expected = nx.single_source_shortest_path_length(to_networkx(g), 0)
        assert bfs_distances(g, 0) == dict(expected)


class TestBfsAvoiding:
    def test_avoids_vertices(self):
        g = cycle_graph(6)
        dist = bfs_distances_avoiding(g, 0, forbidden_vertices=[1])
        assert dist[2] == 4  # must go the long way around

    def test_avoids_edges(self):
        g = cycle_graph(6)
        dist = bfs_distances_avoiding(g, 0, forbidden_edges=[(0, 1)])
        assert dist[1] == 5

    def test_forbidden_source_empty(self):
        g = path_graph(3)
        assert bfs_distances_avoiding(g, 1, forbidden_vertices=[1]) == {}

    def test_cut_vertex_disconnects(self):
        g = path_graph(5)
        dist = bfs_distances_avoiding(g, 0, forbidden_vertices=[2])
        assert 4 not in dist and 3 not in dist


class TestBfsTrees:
    def test_parents_reconstruct_shortest_paths(self):
        g = grid_graph(4, 4)
        dist, parent = bfs_parents(g, 0)
        for v in g.vertices():
            if v == 0:
                continue
            assert dist[parent[v]] == dist[v] - 1

    def test_first_hops_are_source_neighbors(self):
        g = grid_graph(4, 4)
        dist, hop = bfs_first_hops(g, 5)
        for v, h in hop.items():
            assert h in g.neighbors(5)
            # stepping to the first hop makes progress
            assert bfs_distances(g, h)[v] == dist[v] - 1

    def test_shortest_path_endpoints_and_length(self):
        g = grid_graph(5, 5)
        path = shortest_path(g, 0, 24)
        assert path[0] == 0 and path[-1] == 24
        assert len(path) - 1 == bfs_distances(g, 0)[24]
        for a, b in zip(path, path[1:]):
            assert g.has_edge(a, b)

    def test_shortest_path_trivial_and_disconnected(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert shortest_path(g, 0, 0) == [0]
        assert shortest_path(g, 0, 2) is None

    def test_eccentricity_path(self):
        assert eccentricity(path_graph(7), 0) == 6
        assert eccentricity(path_graph(7), 3) == 3


class TestDijkstra:
    def test_simple_weighted(self):
        adj = {
            "s": [("a", 1), ("b", 4)],
            "a": [("b", 1), ("t", 10)],
            "b": [("t", 2)],
            "t": [],
        }
        dist = dijkstra(adj, "s")
        assert dist["t"] == 4

    def test_target_early_exit(self):
        adj = {0: [(1, 1)], 1: [(2, 1)], 2: [(3, 1)], 3: []}
        dist = dijkstra(adj, 0, target=2)
        assert dist[2] == 2

    def test_negative_weight_rejected(self):
        adj = {0: [(1, -1)], 1: []}
        with pytest.raises(ValueError):
            dijkstra(adj, 0)

    def test_with_paths_unreachable(self):
        dist, path = dijkstra_with_paths({0: [], 1: []}, 0, 1)
        assert dist == math.inf and path == []

    def test_with_paths_reconstruction(self):
        adj = {0: [(1, 2), (2, 5)], 1: [(2, 2)], 2: []}
        dist, path = dijkstra_with_paths(adj, 0, 2)
        assert dist == 4 and path == [0, 1, 2]

    def test_matches_bfs_on_unit_weights(self):
        g = grid_graph(6, 6)
        adj = {u: [(v, 1) for v in g.neighbors(u)] for u in g.vertices()}
        assert dijkstra(adj, 0) == bfs_distances(g, 0)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 60), st.integers(0, 2**30))
def test_bfs_matches_networkx_on_random_trees(n, seed):
    g = random_tree(n, seed)
    source = seed % n
    expected = nx.single_source_shortest_path_length(to_networkx(g), source)
    assert bfs_distances(g, source) == dict(expected)
