"""Property-based tests for routing: delivery, fault avoidance, stretch."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ExactRecomputeOracle
from repro.exceptions import RoutingError
from repro.graphs.generators import random_tree
from repro.routing import ForbiddenSetRouting


def random_connected_graph(n, extra_edges, seed):
    g = random_tree(n, seed)
    rng = random.Random(seed ^ 0xCAFE)
    for _ in range(extra_edges):
        a, b = rng.sample(range(n), 2)
        if not g.has_edge(a, b):
            g.add_edge(a, b)
    return g


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_routing_invariants(data):
    n = data.draw(st.integers(5, 26), label="n")
    seed = data.draw(st.integers(0, 10**6), label="seed")
    extra = data.draw(st.integers(0, n // 2), label="extra")
    graph = random_connected_graph(n, extra, seed)
    rng = random.Random(seed)
    s, t = rng.sample(range(n), 2)
    candidates = [v for v in range(n) if v not in (s, t)]
    faults = rng.sample(candidates, min(3, len(candidates)))

    router = ForbiddenSetRouting(graph, epsilon=1.0)
    exact = ExactRecomputeOracle(graph)
    d_true = exact.query(s, t, vertex_faults=faults)

    if math.isinf(d_true):
        try:
            router.route(s, t, vertex_faults=faults)
            raise AssertionError("routed a disconnected pair")
        except RoutingError:
            return
    result = router.route(s, t, vertex_faults=faults)
    # delivery, medium validity, fault avoidance, stretch
    assert result.route[0] == s and result.route[-1] == t
    for a, b in zip(result.route, result.route[1:]):
        assert graph.has_edge(a, b)
    assert not set(result.route) & set(faults)
    assert d_true <= result.hops <= router.stretch_bound() * d_true + 1e-9


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_routing_edge_fault_invariants(data):
    n = data.draw(st.integers(5, 22), label="n")
    seed = data.draw(st.integers(0, 10**6), label="seed")
    graph = random_connected_graph(n, n // 2, seed)
    rng = random.Random(seed)
    s, t = rng.sample(range(n), 2)
    edges = list(graph.edges())
    gone = rng.sample(edges, min(2, len(edges)))

    router = ForbiddenSetRouting(graph, epsilon=1.0)
    exact = ExactRecomputeOracle(graph)
    d_true = exact.query(s, t, edge_faults=gone)
    if math.isinf(d_true):
        return
    result = router.route(s, t, edge_faults=gone)
    used = {(min(a, b), max(a, b)) for a, b in zip(result.route, result.route[1:])}
    assert not used & set(gone)
    assert d_true <= result.hops <= router.stretch_bound() * d_true + 1e-9
