"""Tests for the centralized and dynamic oracles."""

import math

import pytest

from repro.baselines import ExactRecomputeOracle
from repro.exceptions import QueryError
from repro.graphs.generators import cycle_graph, grid_graph, path_graph
from repro.oracle import DynamicDistanceOracle, ForbiddenSetDistanceOracle
from repro.workloads import random_queries


class TestStaticOracle:
    @pytest.fixture(scope="class")
    def grid_oracle(self):
        g = grid_graph(6, 6)
        return g, ForbiddenSetDistanceOracle(g, epsilon=1.0)

    def test_matches_exact_within_stretch(self, grid_oracle):
        g, oracle = grid_oracle
        exact = ExactRecomputeOracle(g)
        for q in random_queries(g, 30, max_vertex_faults=3, max_edge_faults=1, seed=1):
            d_true = exact.query(
                q.s, q.t, vertex_faults=q.vertex_faults, edge_faults=q.edge_faults
            )
            d_hat = oracle.query(
                q.s, q.t, vertex_faults=q.vertex_faults, edge_faults=q.edge_faults
            ).distance
            if math.isinf(d_true):
                assert math.isinf(d_hat)
            else:
                assert d_true <= d_hat <= 2 * d_true

    def test_size_accounting(self, grid_oracle):
        _, oracle = grid_oracle
        assert oracle.size_bits() >= 36 * oracle.max_label_bits() / 36
        assert oracle.max_label_bits() > 0

    def test_out_of_range_vertex(self, grid_oracle):
        _, oracle = grid_oracle
        with pytest.raises(QueryError):
            oracle.query(0, 99)

    def test_bad_forbidden_edge(self, grid_oracle):
        _, oracle = grid_oracle
        with pytest.raises(QueryError):
            oracle.query(0, 5, edge_faults=[(0, 35)])

    def test_oracle_size_independent_of_fault_count(self):
        """The headline property: one build serves any |F|."""
        g = cycle_graph(24)
        oracle = ForbiddenSetDistanceOracle(g, epsilon=1.0)
        size = oracle.size_bits()
        for k in (0, 1, 3, 6):
            faults = list(range(1, 1 + k))
            oracle.query(0, 12, vertex_faults=faults)
            assert oracle.size_bits() == size  # untouched by queries


class TestDynamicOracle:
    def test_delete_and_query(self):
        g = cycle_graph(20)
        dyn = DynamicDistanceOracle(g, epsilon=1.0)
        assert dyn.query(0, 5) == 5
        dyn.delete_vertex(2)
        d = dyn.query(0, 5)
        assert 15 <= d <= 30  # long way around, within stretch 2

    def test_delete_edge_and_restore(self):
        g = path_graph(10)
        dyn = DynamicDistanceOracle(g, epsilon=1.0)
        dyn.delete_edge(4, 5)
        assert math.isinf(dyn.query(0, 9))
        dyn.restore_edge(4, 5)
        assert dyn.query(0, 9) == 9

    def test_restore_vertex(self):
        g = cycle_graph(16)
        dyn = DynamicDistanceOracle(g, epsilon=1.0)
        dyn.delete_vertex(3)
        dyn.restore_vertex(3)
        assert dyn.query(0, 6) == 6

    def test_query_deleted_endpoint_rejected(self):
        dyn = DynamicDistanceOracle(path_graph(6), epsilon=1.0)
        dyn.delete_vertex(2)
        with pytest.raises(QueryError):
            dyn.query(2, 4)

    def test_delete_missing_edge_rejected(self):
        dyn = DynamicDistanceOracle(path_graph(6), epsilon=1.0)
        with pytest.raises(QueryError):
            dyn.delete_edge(0, 3)

    def test_rebuild_triggers_at_threshold(self):
        g = grid_graph(6, 6)
        dyn = DynamicDistanceOracle(g, epsilon=1.0, rebuild_threshold=3)
        for v in (7, 9, 21):
            dyn.delete_vertex(v)
        assert dyn.rebuilds == 0
        dyn.delete_vertex(27)  # 4 > 3 -> rebuild
        assert dyn.rebuilds == 1
        assert dyn.pending_fault_count() == 0

    def test_queries_correct_across_rebuilds(self):
        g = grid_graph(6, 6)
        dyn = DynamicDistanceOracle(g, epsilon=1.0, rebuild_threshold=2)
        exact = ExactRecomputeOracle(g)
        deleted = []
        for v in (7, 9, 21, 27, 14):
            dyn.delete_vertex(v)
            deleted.append(v)
            d_true = exact.query(0, 35, vertex_faults=deleted)
            d_hat = dyn.query(0, 35)
            if math.isinf(d_true):
                assert math.isinf(d_hat)
            else:
                assert d_true <= d_hat <= 2 * d_true

    def test_restore_after_bake_rebuilds(self):
        g = cycle_graph(16)
        dyn = DynamicDistanceOracle(g, epsilon=1.0, rebuild_threshold=1)
        dyn.delete_vertex(3)
        dyn.delete_vertex(8)  # exceeds threshold -> baked
        rebuilds = dyn.rebuilds
        assert rebuilds >= 1
        dyn.restore_vertex(3)
        assert dyn.rebuilds == rebuilds + 1
        assert dyn.query(2, 4) == 2

    def test_edge_fault_on_deleted_vertex_is_dropped(self):
        g = cycle_graph(12)
        dyn = DynamicDistanceOracle(g, epsilon=1.0, rebuild_threshold=1)
        dyn.delete_vertex(3)
        dyn.delete_vertex(7)  # bake both
        dyn.delete_edge(3, 4)  # incident to a deleted vertex
        exact = ExactRecomputeOracle(g)
        d_true = exact.query(0, 5, vertex_faults=[3, 7])
        d_hat = dyn.query(0, 5)
        if math.isinf(d_true):
            assert math.isinf(d_hat)
        else:
            assert d_true <= d_hat <= 2 * d_true


class TestDecodeEconomy:
    """Each serialized label is decoded at most once per query."""

    def _counting_oracle(self, monkeypatch):
        import repro.oracle.oracle as oracle_module

        g = grid_graph(4, 4)
        oracle = ForbiddenSetDistanceOracle(g, epsilon=1.0)
        calls: list[int] = []
        real = oracle_module.decode_label

        def counting(data):
            label = real(data)
            calls.append(label.vertex)
            return label

        monkeypatch.setattr(oracle_module, "decode_label", counting)
        return oracle, calls

    def test_plain_query_decodes_each_endpoint_once(self, monkeypatch):
        oracle, calls = self._counting_oracle(monkeypatch)
        oracle.query(0, 15)
        assert sorted(calls) == [0, 15]

    def test_overlapping_fault_roles_decode_once(self, monkeypatch):
        """Vertex 5 appears as vertex fault and twice via edge faults."""
        oracle, calls = self._counting_oracle(monkeypatch)
        oracle.query(
            0, 15,
            vertex_faults=[5, 5, 6],
            edge_faults=[(5, 1), (1, 5), (5, 9)],
        )
        assert len(calls) == len(set(calls))
        assert sorted(set(calls)) == [0, 1, 5, 6, 9, 15]

    def test_duplicate_faults_answer_unchanged(self):
        g = grid_graph(4, 4)
        oracle = ForbiddenSetDistanceOracle(g, epsilon=1.0)
        clean = oracle.query(0, 15, vertex_faults=[5, 6]).distance
        noisy = oracle.query(
            0, 15, vertex_faults=[5, 6, 5, 6, 6], edge_faults=[]
        ).distance
        assert clean == noisy

    def test_both_edge_orientations_collapse(self):
        g = grid_graph(4, 4)
        oracle = ForbiddenSetDistanceOracle(g, epsilon=1.0)
        a = oracle.query(0, 15, edge_faults=[(1, 5), (5, 1)]).distance
        b = oracle.query(0, 15, edge_faults=[(1, 5)]).distance
        assert a == b

    def test_self_loop_edge_fault_rejected(self):
        g = grid_graph(4, 4)
        oracle = ForbiddenSetDistanceOracle(g, epsilon=1.0)
        with pytest.raises(QueryError):
            oracle.query(0, 15, edge_faults=[(5, 5)])


class TestDynamicOracleProperties:
    """Seeded random churn against BFS ground truth on the survivor graph."""

    def test_random_churn_matches_exact(self):
        from repro.util.rng import make_rng

        g = grid_graph(5, 5)
        exact = ExactRecomputeOracle(g)
        dyn = DynamicDistanceOracle(g, epsilon=1.0, rebuild_threshold=3)
        rng = make_rng(42)
        deleted_v: set[int] = set()
        deleted_e: set[tuple[int, int]] = set()
        edges = sorted(g.edges())
        for step in range(40):
            roll = rng.random()
            if roll < 0.30 and len(deleted_v) < 4:
                v = rng.choice([u for u in range(g.num_vertices) if u not in deleted_v])
                dyn.delete_vertex(v)
                deleted_v.add(v)
            elif roll < 0.45 and deleted_v:
                v = rng.choice(sorted(deleted_v))
                dyn.restore_vertex(v)
                deleted_v.discard(v)
            elif roll < 0.60 and len(deleted_e) < 4:
                e = rng.choice([e for e in edges if e not in deleted_e])
                dyn.delete_edge(*e)
                deleted_e.add(e)
            elif roll < 0.70 and deleted_e:
                e = rng.choice(sorted(deleted_e))
                dyn.restore_edge(*e)
                deleted_e.discard(e)
            else:
                live = [u for u in range(g.num_vertices) if u not in deleted_v]
                s, t = rng.sample(live, 2)
                d_true = exact.query(
                    s, t, vertex_faults=deleted_v, edge_faults=deleted_e
                )
                d_hat = dyn.query(s, t)
                if math.isinf(d_true):
                    assert math.isinf(d_hat), (step, s, t)
                else:
                    assert d_true <= d_hat <= 2 * d_true, (step, s, t)
        assert dyn.rebuilds >= 1  # the threshold crossed at least once

    def test_restore_never_deleted_rejected(self):
        dyn = DynamicDistanceOracle(path_graph(8), epsilon=1.0)
        with pytest.raises(QueryError):
            dyn.restore_vertex(3)
        with pytest.raises(QueryError):
            dyn.restore_edge(3, 4)
        # restoring across a bake still works: the element stays in the
        # deleted set until explicitly restored
        dyn2 = DynamicDistanceOracle(cycle_graph(16), epsilon=1.0, rebuild_threshold=1)
        dyn2.delete_vertex(3)
        dyn2.delete_vertex(8)  # crosses the threshold -> baked
        dyn2.restore_vertex(3)
        with pytest.raises(QueryError):
            dyn2.restore_vertex(3)  # no longer deleted

    def test_observability_counters(self):
        from repro.obs.registry import Registry

        obs = Registry()
        dyn = DynamicDistanceOracle(
            grid_graph(4, 4), epsilon=1.0, rebuild_threshold=2, obs=obs
        )
        dyn.delete_vertex(5)
        dyn.delete_edge(0, 1)
        dyn.delete_vertex(9)  # 3 pending > 2 -> rebuild
        assert obs.get_counter_value(
            "repro_dynamic_deletions_total", kind="vertex"
        ) == 2
        assert obs.get_counter_value(
            "repro_dynamic_deletions_total", kind="edge"
        ) == 1
        assert obs.get_counter_value("repro_dynamic_rebuilds_total") == 1
        assert obs.gauge("repro_dynamic_pending_faults").value == 0
        dyn.restore_vertex(5)
        assert obs.get_counter_value(
            "repro_dynamic_restores_total", kind="vertex"
        ) == 1
