"""Tests for the forbidden-set routing scheme (Theorem 2.7)."""

import math
import random

import pytest

from repro.baselines import ExactRecomputeOracle
from repro.exceptions import RoutingError
from repro.graphs.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
    road_like_graph,
)
from repro.routing import ForbiddenSetRouting
from repro.routing.simulator import approach_points
from repro.workloads import adversarial_queries, clustered_fault_queries, random_queries


def check_routes(graph, router, queries):
    """Route every query; verify delivery, fault avoidance, and stretch."""
    exact = ExactRecomputeOracle(graph)
    bound = router.stretch_bound()
    for q in queries:
        d_true = exact.query(
            q.s, q.t, vertex_faults=q.vertex_faults, edge_faults=q.edge_faults
        )
        if math.isinf(d_true):
            with pytest.raises(RoutingError):
                router.route(
                    q.s, q.t, vertex_faults=q.vertex_faults, edge_faults=q.edge_faults
                )
            continue
        result = router.route(
            q.s, q.t, vertex_faults=q.vertex_faults, edge_faults=q.edge_faults
        )
        assert result.route[0] == q.s and result.route[-1] == q.t
        # the packet must physically traverse edges of G
        for a, b in zip(result.route, result.route[1:]):
            assert graph.has_edge(a, b)
        # and never touch the forbidden set
        assert not set(result.route) & set(q.vertex_faults)
        gone = {(min(a, b), max(a, b)) for a, b in q.edge_faults}
        for a, b in zip(result.route, result.route[1:]):
            assert (min(a, b), max(a, b)) not in gone
        assert d_true <= result.hops <= bound * d_true + 1e-9, (
            q,
            d_true,
            result.hops,
        )


class TestRouteBasics:
    def test_single_hop(self):
        router = ForbiddenSetRouting(path_graph(4), epsilon=1.0)
        result = router.route(1, 2)
        assert result.route == (1, 2)

    def test_failure_free_route_is_shortest(self):
        g = grid_graph(6, 6)
        router = ForbiddenSetRouting(g, epsilon=1.0)
        result = router.route(0, 35)
        assert result.hops == 10  # Manhattan distance

    def test_disconnected_raises(self):
        router = ForbiddenSetRouting(path_graph(8), epsilon=1.0)
        with pytest.raises(RoutingError):
            router.route(0, 7, vertex_faults=[4])

    def test_route_around_single_fault_on_cycle(self):
        router = ForbiddenSetRouting(cycle_graph(24), epsilon=1.0)
        result = router.route(0, 4, vertex_faults=[2])
        assert result.hops == 20  # exactly the long way

    def test_routing_table_ports_valid(self):
        g = grid_graph(5, 5)
        router = ForbiddenSetRouting(g, epsilon=1.0)
        table = router.table(12)
        for target, port in table.ports.items():
            neighbor = g.neighbor_by_port(12, port)
            # stepping through the port gets strictly closer to the target
            from repro.graphs import bfs_distances

            assert bfs_distances(g, target)[neighbor] == bfs_distances(g, target)[12] - 1

    def test_tables_cached(self):
        router = ForbiddenSetRouting(path_graph(8), epsilon=1.0)
        assert router.table(3) is router.table(3)

    def test_approach_points_end_at_target(self):
        router = ForbiddenSetRouting(grid_graph(6, 6), epsilon=1.0)
        label_t = router.labeling.label(20)
        points = approach_points(label_t)
        # the lowest-level approach point is t itself (N_0 contains t)
        assert points[0][1] == 20 and points[0][2] == 0


class TestRouteWorkloads:
    def test_random_faults_grid(self):
        g = grid_graph(8, 8)
        router = ForbiddenSetRouting(g, epsilon=1.0)
        queries = random_queries(g, 30, max_vertex_faults=4, max_edge_faults=2, seed=1)
        check_routes(g, router, queries)

    def test_adversarial_faults_grid(self):
        g = grid_graph(8, 8)
        router = ForbiddenSetRouting(g, epsilon=1.0)
        queries = adversarial_queries(g, 20, faults_per_query=2, seed=2)
        check_routes(g, router, queries)

    def test_clustered_faults_road(self):
        g = road_like_graph(7, 7, removal_fraction=0.1, seed=3)
        router = ForbiddenSetRouting(g, epsilon=1.0)
        queries = clustered_fault_queries(g, 15, cluster_radius=1, seed=3)
        check_routes(g, router, queries)

    def test_tree_routes(self):
        g = random_tree(60, seed=4)
        router = ForbiddenSetRouting(g, epsilon=1.0)
        queries = random_queries(g, 25, max_vertex_faults=3, seed=4)
        check_routes(g, router, queries)

    def test_tight_epsilon(self):
        g = cycle_graph(64)
        router = ForbiddenSetRouting(g, epsilon=0.5)
        queries = random_queries(g, 20, max_vertex_faults=2, max_edge_faults=1, seed=5)
        check_routes(g, router, queries)

    def test_long_final_leg_descent(self):
        """A long path with the fault near the source exercises the
        descend-toward-t machinery (t far from every waypoint)."""
        g = path_graph(256)
        router = ForbiddenSetRouting(g, epsilon=1.0)
        rng = random.Random(6)
        exact = ExactRecomputeOracle(g)
        for _ in range(10):
            s = rng.randrange(0, 20)
            t = rng.randrange(200, 256)
            result = router.route(s, t)
            assert result.hops == exact.query(s, t)
