"""Tests for the resilient sharded label-serving runtime."""

import io
import math

import pytest

from repro.baselines import ExactRecomputeOracle
from repro.exceptions import (
    DeadlineExceededError,
    LabelFetchError,
    QueryError,
    ServiceError,
)
from repro.graphs.generators import cycle_graph, grid_graph
from repro.labeling import ForbiddenSetLabeling
from repro.labeling.encoding import decode_label, encode_label
from repro.oracle import ForbiddenSetDistanceOracle
from repro.oracle.persistence import LabelDatabase, save_labels
from repro.service import (
    BreakerPolicy,
    CircuitBreaker,
    DegradationReason,
    QueryService,
    ResilientLabelClient,
    RetryPolicy,
    ShardedLabelStore,
    VirtualClock,
)


@pytest.fixture(scope="module")
def grid_setup():
    graph = grid_graph(5, 5)
    scheme = ForbiddenSetLabeling(graph, epsilon=1.0)
    labels = [encode_label(scheme.label(v)) for v in graph.vertices()]
    return graph, scheme, labels


def make_store(labels, **kwargs):
    kwargs.setdefault("num_shards", 4)
    kwargs.setdefault("replication", 2)
    kwargs.setdefault("seed", 5)
    return ShardedLabelStore(labels, **kwargs)


class TestVirtualClock:
    def test_advances_monotonically(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        clock.advance(3.5)
        clock.advance(0.5)
        assert clock.now == 4.0

    def test_rejects_negative(self):
        with pytest.raises(QueryError):
            VirtualClock().advance(-1.0)


class TestShardedLabelStore:
    def test_replica_placement(self, grid_setup):
        _, _, labels = grid_setup
        store = make_store(labels, num_shards=4, replication=2)
        assert store.replicas(0) == (0, 1)
        assert store.replicas(6) == (2, 3)
        assert store.replicas(7) == (3, 0)

    def test_fetch_roundtrips_bytes(self, grid_setup):
        _, scheme, labels = grid_setup
        store = make_store(labels)
        for vertex in (0, 7, 24):
            for shard in store.replicas(vertex):
                result = store.fetch(shard, vertex)
                assert result.ok
                assert result.data == labels[vertex]
                decode_label(result.data)  # round-trips through the codec

    def test_fetch_wrong_shard_rejected(self, grid_setup):
        _, _, labels = grid_setup
        store = make_store(labels)
        wrong = next(
            s for s in range(store.num_shards) if s not in store.replicas(0)
        )
        with pytest.raises(QueryError):
            store.fetch(wrong, 0)

    def test_down_shard_fails_fast(self, grid_setup):
        _, _, labels = grid_setup
        store = make_store(labels)
        store.set_down(0)
        result = store.fetch(0, 0)
        assert not result.ok and result.error == "down"
        assert result.latency_ms < store.base_latency_ms

    def test_flaky_shard_fails_sometimes(self, grid_setup):
        _, _, labels = grid_setup
        store = make_store(labels, seed=9)
        store.set_flaky(0, 0.5)
        outcomes = {store.fetch(0, 0).ok for _ in range(50)}
        assert outcomes == {True, False}

    def test_corruption_never_decodes(self, grid_setup):
        """CRC turns every mutated record into an error, not garbage."""
        _, _, labels = grid_setup
        store = make_store(labels)
        hit = store.corrupt(0, fraction=1.0, rng=3)
        assert hit > 0
        assert store.health(0).corrupted_records == hit
        for vertex in range(len(labels)):
            if 0 in store.replicas(vertex):
                result = store.fetch(0, vertex)
                assert not result.ok
                assert result.error == "corrupt"

    def test_recover_restores_pristine_bytes(self, grid_setup):
        _, _, labels = grid_setup
        store = make_store(labels)
        store.corrupt(1, fraction=1.0, rng=3)
        store.set_down(1)
        store.recover(1)
        assert store.health(1).healthy
        vertex = next(v for v in range(len(labels)) if 1 in store.replicas(v))
        assert store.fetch(1, vertex).data == labels[vertex]

    def test_apply_event_rejects_network_kinds(self, grid_setup):
        _, _, labels = grid_setup
        from repro.chaos import ChaosEvent

        store = make_store(labels)
        with pytest.raises(QueryError):
            store.apply_event(ChaosEvent(kind="fail_vertex", vertex=0))

    def test_replication_bounds_validated(self, grid_setup):
        _, _, labels = grid_setup
        with pytest.raises(ServiceError):
            ShardedLabelStore(labels, num_shards=2, replication=3)
        with pytest.raises(ServiceError):
            ShardedLabelStore([])

    def test_recover_all_resets_latency_and_flakiness(self, grid_setup):
        """Recovery clears every injected condition, not just outages."""
        _, _, labels = grid_setup
        store = make_store(labels)
        store.set_slow(0, latency_ms=80.0)
        store.set_flaky(1, probability=0.9)
        store.corrupt(2, fraction=1.0, rng=7)
        store.set_down(3)
        store.recover_all()
        assert store.all_healthy()
        for shard in range(store.num_shards):
            health = store.health(shard)
            assert health.latency_ms == store.base_latency_ms
            assert health.flaky_probability == 0.0
            assert health.corrupted_records == 0
        vertex = next(v for v in range(len(labels)) if 2 in store.replicas(v))
        assert store.fetch(2, vertex).data == labels[vertex]


class TestDurableStore:
    """shard_crash / shard_restart: genuine reload-from-disk recovery."""

    def make_durable_store(self, labels, **kwargs):
        from repro.durability import SimulatedFS

        store = make_store(labels, **kwargs)
        store.attach_durability(SimulatedFS(seed=9), "store-test")
        return store

    def test_crash_requires_durability(self, grid_setup):
        _, _, labels = grid_setup
        store = make_store(labels)
        with pytest.raises(ServiceError):
            store.crash(0)
        with pytest.raises(ServiceError):
            store.restart(0)

    def test_crashed_shard_fails_fast(self, grid_setup):
        _, _, labels = grid_setup
        store = self.make_durable_store(labels)
        store.crash(0)
        assert not store.health(0).healthy
        assert store.health(0).crashed
        vertex = next(v for v in range(len(labels)) if 0 in store.replicas(v))
        result = store.fetch(0, vertex)
        assert not result.ok
        assert result.error == "crashed"
        assert result.latency_ms < store.base_latency_ms

    def test_restart_reloads_records_from_disk(self, grid_setup):
        _, _, labels = grid_setup
        store = self.make_durable_store(labels)
        store.crash(2)
        report = store.restart(2)
        assert store.health(2).healthy
        assert report.recovered_vertices > 0
        for vertex in range(len(labels)):
            if 2 in store.replicas(vertex):
                assert store.fetch(2, vertex).data == labels[vertex]

    def test_restart_discards_injected_corruption(self, grid_setup):
        """A restart serves the durable (clean) bytes, not the damaged ones."""
        _, _, labels = grid_setup
        store = self.make_durable_store(labels)
        store.corrupt(1, fraction=1.0, rng=3)
        store.crash(1)
        store.restart(1)
        assert store.health(1).healthy
        for vertex in range(len(labels)):
            if 1 in store.replicas(vertex):
                assert store.fetch(1, vertex).data == labels[vertex]

    def test_recover_routes_through_restart_when_durable(self, grid_setup):
        _, _, labels = grid_setup
        store = self.make_durable_store(labels)
        store.corrupt(0, fraction=1.0, rng=5)
        store.recover(0)
        assert store.health(0).healthy
        vertex = next(v for v in range(len(labels)) if 0 in store.replicas(v))
        assert store.fetch(0, vertex).data == labels[vertex]

    def test_quarantined_labels_stay_poisoned_across_restart(self, grid_setup):
        """Untrustworthy-at-ingest labels must not resurrect on restart."""
        _, _, labels = grid_setup
        poisoned = list(labels)
        poisoned[3] = None
        store = self.make_durable_store(poisoned)
        shard = store.replicas(3)[0]
        store.crash(shard)
        store.restart(shard)
        result = store.fetch(shard, 3)
        assert not result.ok
        assert result.error == "quarantined"


class TestCircuitBreaker:
    def test_trips_after_threshold_and_recovers(self):
        policy = BreakerPolicy(failure_threshold=3, cooldown_ms=100.0)
        breaker = CircuitBreaker(policy)
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.state(0.0) == "closed"
        breaker.record_failure(0.0)
        assert breaker.state(0.0) == "open"
        assert breaker.trips == 1
        # half-open probe after the cooldown, then closes on success
        assert breaker.state(100.0) == "half_open"
        breaker.record_success(100.0)
        assert breaker.state(100.0) == "closed"
        assert breaker.closes == 1

    def test_failed_probe_rearms_cooldown(self):
        policy = BreakerPolicy(failure_threshold=1, cooldown_ms=50.0)
        breaker = CircuitBreaker(policy)
        breaker.record_failure(0.0)
        assert breaker.state(50.0) == "half_open"
        breaker.record_failure(50.0)
        assert breaker.state(60.0) == "open"
        assert breaker.state(100.0) == "half_open"


class TestResilientClient:
    def make_client(self, labels, **kwargs):
        store = make_store(labels)
        return store, ResilientLabelClient(store, seed=7, **kwargs)

    def test_healthy_fetch(self, grid_setup):
        _, _, labels = grid_setup
        _, client = self.make_client(labels)
        assert client.fetch(3) == labels[3]
        assert client.metrics.retries == 0

    def test_failover_to_replica(self, grid_setup):
        _, _, labels = grid_setup
        store, client = self.make_client(labels)
        store.set_down(store.replicas(0)[0])
        assert client.fetch(0) == labels[0]
        assert client.metrics.failovers >= 1

    def test_all_replicas_down_raises_fetch_error(self, grid_setup):
        _, _, labels = grid_setup
        store, client = self.make_client(labels)
        for shard in store.replicas(0):
            store.set_down(shard)
        with pytest.raises(LabelFetchError):
            client.fetch(0)
        assert client.metrics.fetch_failures == 1

    def test_attempts_bounded_by_policy(self, grid_setup):
        _, _, labels = grid_setup
        store, client = self.make_client(
            labels, retry=RetryPolicy(max_attempts=3, hedging=False)
        )
        for shard in store.replicas(0):
            store.set_down(shard)
        outcome = client.fetch_label(0)
        assert not outcome.ok
        assert outcome.attempts <= 3

    def test_deadline_exceeded(self, grid_setup):
        _, _, labels = grid_setup
        store, client = self.make_client(
            labels, retry=RetryPolicy(max_attempts=10, hedging=False)
        )
        store.set_slow(store.replicas(0)[0], 500.0)
        store.set_slow(store.replicas(0)[1], 500.0)
        with pytest.raises(DeadlineExceededError):
            client.fetch(0, deadline_ms=40.0)
        assert client.metrics.deadline_exhausted == 1

    def test_attempt_exhaustion_raises_fetch_error(self, grid_setup):
        _, _, labels = grid_setup
        store, client = self.make_client(labels)
        store.set_slow(store.replicas(0)[0], 500.0)
        store.set_slow(store.replicas(0)[1], 500.0)
        with pytest.raises(LabelFetchError, match="timeout"):
            client.fetch(0, deadline_ms=40.0)

    def test_breaker_short_circuits_after_trips(self, grid_setup):
        _, _, labels = grid_setup
        store, client = self.make_client(labels)
        for shard in store.replicas(0):
            store.set_down(shard)
        for _ in range(4):
            client.fetch_label(0, deadline_ms=30.0)
        assert client.metrics.breaker_trips >= 1
        assert client.metrics.short_circuits >= 1

    def test_hedged_read_beats_slow_primary(self, grid_setup):
        _, _, labels = grid_setup
        store, client = self.make_client(
            labels,
            retry=RetryPolicy(hedge_after_ms=5.0, attempt_timeout_ms=60.0),
        )
        store.set_slow(store.replicas(0)[0], 40.0)
        outcome = client.fetch_label(0)
        assert outcome.ok
        assert client.metrics.hedges == 1
        assert client.metrics.hedge_wins == 1
        # the hedge finished long before the slow primary would have
        assert outcome.latency_ms < 40.0

    def test_seeded_determinism(self, grid_setup):
        _, _, labels = grid_setup

        def run():
            store = make_store(labels, seed=21)
            client = ResilientLabelClient(store, seed=22)
            store.set_flaky(0, 0.6)
            store.set_slow(1, 30.0)
            outcomes = [client.fetch_label(v) for v in range(10)]
            return [
                (o.ok, o.attempts, o.latency_ms) for o in outcomes
            ], client.metrics.snapshot()

        assert run() == run()


class TestQueryService:
    @pytest.fixture(scope="class")
    def oracle_service(self):
        graph = grid_graph(5, 5)
        oracle = ForbiddenSetDistanceOracle(graph, epsilon=1.0)
        service = QueryService.from_oracle(
            oracle, num_shards=4, replication=2, store_seed=5, seed=7
        )
        return graph, oracle, service

    def test_exact_matches_oracle(self, oracle_service):
        graph, oracle, service = oracle_service
        exact = ExactRecomputeOracle(graph)
        for s, t, faults in [(0, 24, ()), (0, 24, (12,)), (4, 20, (10, 14))]:
            outcome = service.query(s, t, vertex_faults=faults)
            assert outcome.exact and not outcome.missing
            d_true = exact.query(s, t, vertex_faults=list(faults))
            assert d_true <= outcome.distance <= 2 * d_true
            assert outcome.lower_bound <= d_true
            assert (
                outcome.distance
                == oracle.query(s, t, vertex_faults=list(faults)).distance
            )

    def test_duplicate_faults_collapse(self, oracle_service):
        _, _, service = oracle_service
        a = service.query(1, 23, vertex_faults=(7, 7, 7), edge_faults=[(2, 3)])
        b = service.query(1, 23, vertex_faults=(7,), edge_faults=[(3, 2)])
        assert a.distance == b.distance

    def test_endpoint_in_faults_rejected(self, oracle_service):
        _, _, service = oracle_service
        with pytest.raises(QueryError):
            service.query(0, 24, vertex_faults=(0,))

    def test_endpoint_unavailable_is_flagged(self, oracle_service):
        """Both replicas of an endpoint down: degraded, never a guess."""
        graph, oracle, service = oracle_service
        for shard in service.store.replicas(0):
            service.store.set_down(shard)
        outcome = service.query(0, 24)
        assert outcome.degraded
        assert outcome.distance is None
        assert outcome.reason == "endpoint_unavailable"
        assert outcome.lower_bound == 0.0
        assert outcome.retry_suggested
        assert any(m.role == "endpoint" for m in outcome.missing)
        # recovery restores exact answers, no rebuild needed
        service.store.recover_all()
        service.clock.advance(2 * service.client.breaker_policy.cooldown_ms)
        after = service.query(0, 24)
        assert after.exact
        assert after.distance == oracle.query(0, 24).distance

    def test_missing_fault_labels_give_certified_lower_bound(self):
        graph = grid_graph(5, 5)
        oracle = ForbiddenSetDistanceOracle(graph, epsilon=1.0)
        service = QueryService.from_oracle(
            oracle, num_shards=5, replication=1, store_seed=5, seed=7
        )
        fault = 12
        exact = ExactRecomputeOracle(graph)
        for shard in service.store.replicas(fault):
            service.store.set_down(shard)
        s, t = 0, 24
        assert shard not in (
            service.store.replicas(s) + service.store.replicas(t)
        )
        outcome = service.query(s, t, vertex_faults=(fault,))
        assert outcome.degraded
        assert outcome.reason == "fault_labels_unavailable"
        assert outcome.distance is None
        assert any(m.vertex == fault for m in outcome.missing)
        d_true = exact.query(s, t, vertex_faults=[fault])
        assert 0 < outcome.lower_bound <= d_true

    def test_metrics_summary_counts(self, oracle_service):
        _, _, service = oracle_service
        summary = service.metrics_summary()
        assert summary["queries"] == (
            summary["exact_answers"] + summary["degraded_answers"]
        )
        assert 0.0 <= summary["degraded_rate"] <= 1.0
        assert summary["attempts"] >= summary["queries"]

    def test_from_scheme_stretch_bound(self):
        graph = cycle_graph(16)
        scheme = ForbiddenSetLabeling(graph, epsilon=0.5)
        service = QueryService.from_scheme(scheme, num_shards=3)
        assert service.stretch_bound == scheme.stretch_bound()
        assert service.query(0, 8).exact


class TestQuarantineServing:
    """Satellite: .fsdl quarantine interplay with the serving tier."""

    def _quarantined_db(self):
        graph = grid_graph(5, 5)
        scheme = ForbiddenSetLabeling(graph, epsilon=1.0)
        buffer = io.BytesIO()
        save_labels(scheme, buffer)
        blob = bytearray(buffer.getvalue())
        # damage the first byte of label 0's payload (v2 layout:
        # 25-byte header + 4-byte count, then [len u32][crc u32][data])
        blob[29 + 8] ^= 0x01
        db = LabelDatabase.load(io.BytesIO(bytes(blob)), strict=False)
        assert list(db.quarantined) == [0]
        return graph, db

    def test_quarantined_label_degrades_never_decodes(self):
        graph, db = self._quarantined_db()
        service = QueryService.from_database(
            db, num_shards=4, replication=2, store_seed=5, seed=7
        )
        outcome = service.query(0, 24)
        assert outcome.degraded
        assert outcome.distance is None
        assert any(
            m.vertex == 0 and "quarantined" in m.error
            for m in outcome.missing
        )

    def test_quarantined_fault_label_yields_lower_bound(self):
        graph, db = self._quarantined_db()
        service = QueryService.from_database(
            db, num_shards=4, replication=2, store_seed=5, seed=7
        )
        exact = ExactRecomputeOracle(graph)
        outcome = service.query(6, 24, vertex_faults=(0,))
        assert outcome.degraded
        assert outcome.reason == "fault_labels_unavailable"
        assert outcome.lower_bound <= exact.query(6, 24, vertex_faults=[0])

    def test_clean_labels_still_serve_exactly(self):
        graph, db = self._quarantined_db()
        service = QueryService.from_database(
            db, num_shards=4, replication=2, store_seed=5, seed=7
        )
        pristine = ExactRecomputeOracle(graph)
        outcome = service.query(6, 24, vertex_faults=(12,))
        assert outcome.exact
        d_true = pristine.query(6, 24, vertex_faults=[12])
        assert d_true <= outcome.distance <= 2 * d_true


class TestDegradationReason:
    """The degradation vocabulary is a stable enum, string-compatible."""

    def test_members_are_stable(self):
        assert {reason.value for reason in DegradationReason} == {
            "endpoint_unavailable",
            "fault_labels_unavailable",
            "shed_overload",
            "quota_exceeded",
            "queue_deadline",
        }

    def test_shed_reasons_are_the_gateway_subset(self):
        from repro.service import SHED_REASONS

        assert SHED_REASONS == {
            DegradationReason.SHED_OVERLOAD,
            DegradationReason.QUOTA_EXCEEDED,
            DegradationReason.QUEUE_DEADLINE,
        }
        assert DegradationReason.ENDPOINT_UNAVAILABLE not in SHED_REASONS

    def test_string_compatibility(self):
        reason = DegradationReason.ENDPOINT_UNAVAILABLE
        assert reason == "endpoint_unavailable"
        assert str(reason) == "endpoint_unavailable"
        assert f"{reason}" == "endpoint_unavailable"
        assert isinstance(reason, str)

    def test_outcome_carries_enum_member(self):
        graph = grid_graph(4, 4)
        oracle = ForbiddenSetDistanceOracle(graph, epsilon=1.0)
        service = QueryService.from_oracle(
            oracle, num_shards=4, replication=2, store_seed=5, seed=7
        )
        healthy = service.query(0, 15)
        assert healthy.reason is None
        for shard in service.store.replicas(0):
            service.store.set_down(shard)
        outcome = service.query(0, 15)
        assert outcome.reason is DegradationReason.ENDPOINT_UNAVAILABLE
