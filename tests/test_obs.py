"""Property tests of the observability layer's determinism contracts.

The registry promises *bit-determinism*: histogram merging is
associative and commutative exactly (integer microunit sums, never
float accumulation), counter aggregation is order-independent, and the
exporters render byte-identical output for identical workloads in any
insertion order.  Hypothesis hunts for counterexamples; the misuse
tests pin the fail-loudly contract.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ObservabilityError
from repro.obs import (
    Counter,
    Histogram,
    Registry,
    Tracer,
    canonical_labels,
    format_micros,
    render_metrics_json,
    render_prometheus,
)

BOUNDS = (0.5, 1.0, 5.0, 25.0, 100.0)

samples = st.lists(
    st.floats(
        min_value=0.0, max_value=500.0,
        allow_nan=False, allow_infinity=False,
    ),
    max_size=30,
)


def make_hist(values) -> Histogram:
    hist = Histogram("repro_test_ms", (), BOUNDS)
    for value in values:
        hist.observe(value)
    return hist


def hist_fields(hist: Histogram):
    return (hist.bucket_counts, hist.count, hist.sum_micros)


class TestHistogramMerge:
    @settings(max_examples=60, deadline=None)
    @given(samples, samples)
    def test_commutative(self, xs, ys):
        a, b = make_hist(xs), make_hist(ys)
        assert hist_fields(a.merge(b)) == hist_fields(b.merge(a))

    @settings(max_examples=60, deadline=None)
    @given(samples, samples, samples)
    def test_associative(self, xs, ys, zs):
        a, b, c = make_hist(xs), make_hist(ys), make_hist(zs)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert hist_fields(left) == hist_fields(right)

    @settings(max_examples=40, deadline=None)
    @given(samples, samples)
    def test_merge_equals_combined_observation(self, xs, ys):
        merged = make_hist(xs).merge(make_hist(ys))
        combined = make_hist(list(xs) + list(ys))
        assert hist_fields(merged) == hist_fields(combined)

    def test_bucket_mismatch_rejected(self):
        a = Histogram("repro_test_ms", (), (1.0, 2.0))
        b = Histogram("repro_test_ms", (), (1.0, 3.0))
        with pytest.raises(ObservabilityError):
            a.merge(b)

    def test_bounds_must_increase_strictly(self):
        with pytest.raises(ObservabilityError):
            Histogram("repro_test_ms", (), (1.0, 1.0, 2.0))
        with pytest.raises(ObservabilityError):
            Histogram("repro_test_ms", (), ())


class TestCounterAggregation:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 10**6), max_size=40),
        st.integers(0, 10**6),
    )
    def test_order_independent(self, increments, seed):
        shuffled = list(increments)
        random.Random(seed).shuffle(shuffled)
        a = Counter("repro_test_total", ())
        b = Counter("repro_test_total", ())
        for delta in increments:
            a.inc(delta)
        for delta in shuffled:
            b.inc(delta)
        assert a.value == b.value == sum(increments)

    def test_rejects_negative_float_and_bool(self):
        counter = Counter("repro_test_total", ())
        with pytest.raises(ObservabilityError):
            counter.inc(-1)
        with pytest.raises(ObservabilityError):
            counter.inc(1.5)  # type: ignore[arg-type]
        with pytest.raises(ObservabilityError):
            counter.inc(True)


# one seeded workload = a reproducible sequence of metric operations
def apply_workload(registry: Registry, seed: int, ops: int) -> None:
    rng = random.Random(seed)
    names = ["repro_a_total", "repro_b_total", "repro_c_ms", "repro_d"]
    for _ in range(ops):
        name = rng.choice(names)
        shard = rng.randrange(3)
        if name.endswith("_total"):
            registry.counter(name, shard=shard).inc(rng.randrange(5))
        elif name.endswith("_ms"):
            registry.histogram(
                name, buckets=BOUNDS, shard=shard
            ).observe(rng.uniform(0, 200))
        else:
            registry.gauge(name, shard=shard).set(rng.uniform(-5, 5))


class TestExporterDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6), st.integers(1, 120))
    def test_byte_identical_across_runs(self, seed, ops):
        one, two = Registry(), Registry()
        apply_workload(one, seed, ops)
        apply_workload(two, seed, ops)
        assert render_prometheus(one) == render_prometheus(two)
        assert render_metrics_json(one) == render_metrics_json(two)

    def test_insertion_order_irrelevant(self):
        one, two = Registry(), Registry()
        one.counter("repro_z_total", shard=1).inc(3)
        one.counter("repro_a_total").inc(2)
        one.counter("repro_z_total", shard=0).inc(1)
        two.counter("repro_a_total").inc(2)
        two.counter("repro_z_total", shard=0).inc(1)
        two.counter("repro_z_total", shard=1).inc(3)
        assert render_prometheus(one) == render_prometheus(two)

    def test_json_is_canonical(self):
        registry = Registry()
        apply_workload(registry, seed=7, ops=40)
        text = render_metrics_json(registry)
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )

    @settings(max_examples=60, deadline=None)
    @given(st.integers(-10**12, 10**12))
    def test_format_micros_exact(self, micros):
        rendered = format_micros(micros)
        # parse back with pure string arithmetic: the rendering must
        # round-trip to the same integer microunit count
        negative = rendered.startswith("-")
        body = rendered.lstrip("-")
        whole, _, frac = body.partition(".")
        assert len(frac) <= 6 and (not frac or frac[-1] != "0")
        value = int(whole) * 10**6 + int(frac.ljust(6, "0") or 0)
        assert (-value if negative else value) == micros


class TestRegistryContract:
    def test_type_conflicts_raise(self):
        registry = Registry()
        registry.counter("repro_x")
        with pytest.raises(ObservabilityError):
            registry.gauge("repro_x")
        with pytest.raises(ObservabilityError):
            registry.histogram("repro_x")

    def test_help_conflict_raises(self):
        registry = Registry()
        registry.counter("repro_x", "one thing")
        with pytest.raises(ObservabilityError):
            registry.counter("repro_x", "another thing")

    def test_bucket_layout_fixed_by_first_call(self):
        registry = Registry()
        registry.histogram("repro_h", buckets=(1.0, 2.0))
        registry.histogram("repro_h")  # no layout given: reuses the fixed one
        with pytest.raises(ObservabilityError):
            registry.histogram("repro_h", buckets=(1.0, 3.0))

    def test_bad_names_rejected(self):
        registry = Registry()
        with pytest.raises(ObservabilityError):
            registry.counter("bad name")
        with pytest.raises(ObservabilityError):
            registry.counter("repro_ok", **{"0bad": "x"})
        with pytest.raises(ObservabilityError):
            canonical_labels({"not a label": 1})

    def test_get_or_create_returns_same_instrument(self):
        registry = Registry()
        a = registry.counter("repro_x", shard=0)
        b = registry.counter("repro_x", shard=0)
        assert a is b
        a.inc(5)
        assert registry.get_counter_value("repro_x", shard=0) == 5
        assert registry.total("repro_x") == 5


class TestTracer:
    def test_span_tree_and_dense_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                inner.add("ops", 3)
                inner.add("ops", 2)
        assert [s.span_id for s in tracer.spans] == [1, 2]
        assert inner.parent_id == outer.span_id
        assert inner.attrs["ops"] == 5
        assert tracer.attr_total("inner", "ops") == 5

    def test_end_of_non_innermost_raises(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("inner")
        with pytest.raises(ObservabilityError):
            tracer.end(outer)

    def test_no_clock_means_no_timestamps(self):
        tracer = Tracer()
        with tracer.span("a") as span:
            pass
        assert span.start_ms is None and span.end_ms is None
        assert "start_ms" not in span.to_dict()

    def test_virtual_clock_stamps(self):
        from repro.service.clock import VirtualClock

        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("a") as span:
            clock.advance(7.5)
        assert span.start_ms == 0.0 and span.end_ms == 7.5

    def test_add_on_string_attr_raises(self):
        tracer = Tracer()
        span = tracer.start("a")
        span.set("status", "exact")
        with pytest.raises(ObservabilityError):
            span.add("status")
