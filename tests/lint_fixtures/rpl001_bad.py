"""Fixture: raw ``random`` import bypassing the seed plumbing (RPL001)."""

import random


def pick(n: int) -> int:
    """Unseeded draw — irreproducible."""
    return random.randrange(n)
