"""Fixture: unordered iteration feeding a serialization path (RPL007)."""


def write_ids(ids: list, out: list) -> None:
    """Iterates a set expression — byte output depends on hash order."""
    for vertex in set(ids):
        out.append(vertex)


def save_table(table: dict, out: list) -> None:
    """Writer-named function iterating raw dict views."""
    for key in table.keys():
        out.append(key)
