"""Fixture: explicit raise for runtime validation (RPL006 clean)."""


def check_radius(radius: int) -> int:
    """Validation that survives ``python -O``."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return radius
