"""Fixture: drifted copies of the paper's radius schedule (RPL004)."""


def lam(i: int) -> int:
    """A duplicated ``λ_i = 2^{i+1}`` that can drift from params.py."""
    return 1 << (i + 1)


def rho(i: int, c: int) -> int:
    """A duplicated ``ρ_i = 2^{i-c}``."""
    return 2 ** (i - c)
