"""Fixture: broad handler that swallows corruption (RPL003)."""


def load(data: bytes) -> str | None:
    """Silently turns any failure — corruption included — into None."""
    try:
        return data.decode("utf-8")
    except Exception:
        return None
