"""RPL011 bad fixture: three cooperative-concurrency races.

* ``tick`` calls a coroutine as a bare statement — the body never
  runs.
* ``poll`` reaches ``time.time`` through a sync helper — a coroutine
  must not read the wall clock.
* ``admit`` caches shared gateway state before an ``await`` and uses
  the stale value after it.
"""

import time


class Gateway:
    def __init__(self) -> None:
        self._inflight: dict[str, int] = {}

    async def refresh(self) -> None:
        self._inflight.clear()

    async def tick(self) -> None:
        self.refresh()

    def _measure(self) -> float:
        return time.time()

    async def poll(self) -> float:
        return self._measure()

    async def admit(self, key: str) -> int:
        entry = self._inflight.get(key)
        await self.refresh()
        if entry is None:
            return 0
        return entry + 1
