"""Fixture: raw durable writes bypassing the atomic protocol (RPL009)."""

import os


def save_blob(path: str, blob: bytes) -> int:
    """Writes the artifact in place — a crash here leaves a torn file."""
    with open(path, "wb") as handle:
        handle.write(blob)
    return len(blob)


def install(src: str, dst: str) -> None:
    """Raw rename outside the atomic-write helper."""
    os.rename(src, dst)
