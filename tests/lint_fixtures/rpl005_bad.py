"""Fixture: mutable default argument (RPL005)."""


def collect(item: int, acc: list = []) -> list:
    """The default list is shared across every call."""
    acc.append(item)
    return acc
