"""Fixture: schedule values read from the parameter module (RPL004 clean)."""

from repro.labeling.params import lam_for_level


def protected_ball_radius(i: int) -> int:
    """``λ_i`` via the single source of truth."""
    return lam_for_level(i)
