"""Fixture: ``assert`` used for runtime validation in library code (RPL006)."""


def check_radius(radius: int) -> int:
    """Validation that silently vanishes under ``python -O``."""
    assert radius >= 0, "radius must be non-negative"
    return radius
