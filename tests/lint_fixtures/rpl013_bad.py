"""RPL013 bad fixture: per-query allocations on the decode hot path.

``decode_distance`` builds fresh sets per query and calls a helper
that builds a dict — both show up in the advisory hot-path audit with
their call depth from the entry.
"""


def _gather(hubs):
    seen = {}
    for hub in hubs:
        seen[hub] = True
    return seen


def decode_distance(label_u, label_v):
    common = set(label_u) & set(label_v)
    table = _gather(common)
    return len(table)
