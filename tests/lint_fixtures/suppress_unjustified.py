"""Fixture: suppression without a justification must not silence anything."""

import random  # repro-lint: disable=RPL001


def pick(n: int) -> int:
    """The directive above lacks the required ``-- <why>`` clause."""
    return random.randrange(n)
