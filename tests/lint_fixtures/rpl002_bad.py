"""Fixture: wall-clock read (RPL002)."""

import time


def stamp() -> float:
    """Couples the run to the host's wall clock."""
    return time.time()
