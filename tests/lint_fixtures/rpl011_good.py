"""RPL011 good fixture: the same shapes, raced correctly.

Coroutines are awaited, the clock comes from the injected loop, and
shared state is re-read after every ``await`` before use.
"""


class Gateway:
    def __init__(self, loop) -> None:
        self._loop = loop
        self._inflight: dict[str, int] = {}

    async def refresh(self) -> None:
        self._inflight.clear()

    async def tick(self) -> None:
        await self.refresh()

    async def poll(self) -> float:
        await self._loop.sleep(1)
        return float(self._loop.now())

    async def admit(self, key: str) -> int:
        await self.refresh()
        entry = self._inflight.get(key)
        if entry is None:
            return 0
        return entry + 1
