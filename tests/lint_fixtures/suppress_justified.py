"""Fixture: justified suppression silences the finding."""

import random  # repro-lint: disable=RPL001 -- fixture exercising the suppression path


def pick(n: int) -> int:
    """The import above is deliberately raw; the call itself is not flagged."""
    return random.randrange(n)
