"""RPL010 good fixture: corruption reaches sanctioned boundaries.

Same call chain as the bad fixture, but every covering handler either
re-raises, routes the payload to a quarantine function, or sits in a
CLI ``main`` — all sanctioned ways for a corruption signal to end.
"""

from repro.exceptions import LabelCorruptionError, ReproError


def check_payload(payload: bytes) -> int:
    if payload[:2] != b"RP":
        raise LabelCorruptionError("bad magic")
    return len(payload)


def load_entry(payload: bytes) -> int:
    return check_payload(payload)


def refresh(payload: bytes) -> int:
    try:
        return load_entry(payload)
    except ReproError:
        raise


def quarantine_entry(payload: bytes) -> int:
    try:
        return load_entry(payload)
    except ReproError:
        return -1


def main(payload: bytes) -> int:
    try:
        return load_entry(payload)
    except ReproError:
        return 2
