"""Fixture: randomness routed through ``repro.util.rng`` (RPL001 clean)."""

from repro.util.rng import make_rng


def pick(n: int, seed: int = 0) -> int:
    """Seeded draw — reproducible bit-for-bit."""
    return make_rng(seed).randrange(n)
