"""RPL013 good fixture: an allocation-free decode hot path.

``decode_distance`` walks the labels against a caller-provided
scratch table — no containers are built per query, so the advisory
audit stays silent.
"""


def decode_distance(label_u, label_v, scratch):
    best = -1
    for hub, du in label_u:
        scratch[hub] = du
    for hub, dv in label_v:
        du = scratch[hub]
        if du >= 0 and (best < 0 or du + dv < best):
            best = du + dv
    for hub, _ in label_u:
        scratch[hub] = -1
    return best
