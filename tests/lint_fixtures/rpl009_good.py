"""Fixture: durable writes through the atomic helper (RPL009 clean)."""

from repro.durability.atomic import atomic_write_path


def save_blob(path: str, blob: bytes) -> int:
    """Installs atomically: tmp + fsync + replace."""
    return atomic_write_path(path, blob)


def read_blob(path: str) -> bytes:
    """Read-only opens stay legal."""
    with open(path, "rb") as handle:
        return handle.read()
