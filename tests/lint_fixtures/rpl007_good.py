"""Fixture: sorted iteration before serialization (RPL007 clean)."""


def write_ids(ids: list, out: list) -> None:
    """Sorted set iteration — deterministic bytes."""
    for vertex in sorted(set(ids)):
        out.append(vertex)


def save_table(table: dict, out: list) -> None:
    """Writer iterating keys in sorted order."""
    for key in sorted(table.keys()):
        out.append(key)
