"""Fixture: monotonic elapsed measurement (RPL002 clean)."""

import time


def measure() -> float:
    """Elapsed time via perf_counter, never the wall clock."""
    start = time.perf_counter()
    return time.perf_counter() - start
