"""Fixture: handlers that cannot swallow corruption (RPL003 clean)."""


def load(data: bytes) -> str:
    """Narrow tuple: only the errors decode can actually raise."""
    try:
        return data.decode("utf-8")
    except (UnicodeDecodeError, ValueError) as exc:
        raise RuntimeError(f"undecodable payload: {exc}") from exc


def audit(data: bytes) -> str:
    """Broad catch is fine when the handler provably re-raises."""
    try:
        return data.decode("utf-8")
    except Exception:
        raise
