"""RPL012 good fixture: sort before deriving the checksummed value.

Identical to the bad fixture except the iteration goes through
``sorted(...)``, which pins the order and launders the taint.
"""

import zlib


def fold(values: list[int]) -> int:
    seen = {value & 0xFF for value in values}
    digest = 0
    for value in sorted(seen):
        digest = (digest * 31 + value) & 0xFFFFFFFF
    return digest


def stamp(values: list[int]) -> int:
    digest = fold(values)
    payload = digest.to_bytes(4, "big")
    return zlib.crc32(payload)
