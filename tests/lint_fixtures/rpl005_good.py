"""Fixture: None default with per-call container (RPL005 clean)."""


def collect(item: int, acc: list | None = None) -> list:
    """Fresh container per call unless one is injected."""
    if acc is None:
        acc = []
    acc.append(item)
    return acc
