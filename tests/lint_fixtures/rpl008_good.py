"""Fixture: public API with return annotations (RPL008 clean)."""


def distance(s: int, t: int) -> int:
    """Annotated return."""
    return abs(s - t)


class Oracle:
    """Public class with annotated public method."""

    def query(self, s: int, t: int) -> int:
        """Annotated return."""
        return s + t

    def _internal(self, s, t):
        """Private helpers are exempt."""
        return s - t
