"""RPL010 bad fixture: a corruption signal swallowed mid-chain.

``refresh`` absorbs a :class:`LabelCorruptionError` raised two calls
below it behind an ``except ReproError`` with no re-raise and no use
of the exception — the corruption never reaches a sanctioned
boundary.
"""

from repro.exceptions import LabelCorruptionError, ReproError


def check_payload(payload: bytes) -> int:
    if payload[:2] != b"RP":
        raise LabelCorruptionError("bad magic")
    return len(payload)


def load_entry(payload: bytes) -> int:
    return check_payload(payload)


def refresh(payload: bytes) -> int:
    try:
        return load_entry(payload)
    except ReproError:
        return -1
