"""RPL012 bad fixture: set-iteration order leaks into a CRC.

``fold`` iterates a freshly built set and folds the elements in
whatever order hashing yields; ``stamp`` feeds the result to
``zlib.crc32`` — the checksum depends on hash-seed iteration order.
"""

import zlib


def fold(values: list[int]) -> int:
    seen = {value & 0xFF for value in values}
    digest = 0
    for value in seen:
        digest = (digest * 31 + value) & 0xFFFFFFFF
    return digest


def stamp(values: list[int]) -> int:
    digest = fold(values)
    payload = digest.to_bytes(4, "big")
    return zlib.crc32(payload)
