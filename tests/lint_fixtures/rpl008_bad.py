"""Fixture: public API without return annotations (RPL008)."""


def distance(s, t):
    """Missing ``->`` annotation."""
    return abs(s - t)


class Oracle:
    """Public class whose public method is unannotated."""

    def query(self, s, t):
        """Missing ``->`` annotation."""
        return s + t
