"""Tests for the weighted-graph extension."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError, QueryError
from repro.graphs.generators import cycle_graph, grid_graph, path_graph, random_tree
from repro.graphs.weighted import (
    WeightedGraph,
    log2_ceil,
    multi_source_weighted_distances,
    weighted_distances,
    weighted_distances_avoiding,
    weighted_eccentricity,
)
from repro.labeling.weighted import WeightedForbiddenSetLabeling
from repro.nets.weighted_hierarchy import (
    WeightedNetHierarchy,
    weighted_greedy_dominating_set,
)


def randomize_weights(graph, max_weight, seed):
    rng = random.Random(seed)
    wg = WeightedGraph(graph.num_vertices)
    for u, v in graph.edges():
        wg.add_edge(u, v, rng.randint(1, max_weight))
    return wg


class TestWeightedGraph:
    def test_add_and_inspect(self):
        g = WeightedGraph(3)
        g.add_edge(0, 1, 5)
        assert g.has_edge(1, 0)
        assert g.neighbors(0) == [(1, 5)]
        assert list(g.edges()) == [(0, 1, 5)]

    def test_invalid_weight(self):
        g = WeightedGraph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 0)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 1.5)

    def test_self_loop_and_duplicate(self):
        g = WeightedGraph(2)
        g.add_edge(0, 1, 1)
        with pytest.raises(GraphError):
            g.add_edge(0, 0, 1)
        with pytest.raises(GraphError):
            g.add_edge(1, 0, 2)

    def test_from_unweighted(self):
        g = WeightedGraph.from_unweighted(path_graph(4), weight=3)
        assert weighted_distances(g, 0)[3] == 9

    def test_max_weight_and_bound(self):
        g = WeightedGraph.from_edges(3, [(0, 1, 7), (1, 2, 2)])
        assert g.max_weight() == 7
        assert g.distance_upper_bound() == 14

    def test_log2_ceil(self):
        assert [log2_ceil(v) for v in (1, 2, 3, 4, 5, 8)] == [0, 1, 2, 2, 3, 3]
        with pytest.raises(GraphError):
            log2_ceil(0)


class TestWeightedTraversal:
    def test_dijkstra_prefers_light_path(self):
        g = WeightedGraph.from_edges(3, [(0, 1, 1), (1, 2, 1), (0, 2, 5)])
        assert weighted_distances(g, 0)[2] == 2

    def test_radius_truncation(self):
        g = WeightedGraph.from_unweighted(path_graph(10), weight=2)
        dist = weighted_distances(g, 0, radius=5)
        assert set(dist) == {0, 1, 2}  # distances 0, 2, 4

    def test_avoiding(self):
        g = WeightedGraph.from_unweighted(cycle_graph(6))
        dist = weighted_distances_avoiding(g, 0, forbidden_vertices=[1])
        assert dist[2] == 4

    def test_avoiding_edges_and_source(self):
        g = WeightedGraph.from_unweighted(cycle_graph(6))
        assert weighted_distances_avoiding(g, 0, forbidden_vertices=[0]) == {}
        dist = weighted_distances_avoiding(g, 0, forbidden_edges=[(0, 1)])
        assert dist[1] == 5

    def test_multi_source_attribution(self):
        g = WeightedGraph.from_unweighted(path_graph(7))
        nearest = multi_source_weighted_distances(g, {0, 6})
        assert nearest[1] == (0, 1)
        assert nearest[5] == (6, 1)

    def test_eccentricity(self):
        g = WeightedGraph.from_unweighted(path_graph(5), weight=3)
        assert weighted_eccentricity(g, 0) == 12

    def test_matches_bfs_on_unit_weights(self):
        from repro.graphs import bfs_distances

        base = grid_graph(6, 6)
        g = WeightedGraph.from_unweighted(base)
        assert weighted_distances(g, 0) == bfs_distances(base, 0)


class TestWeightedNets:
    def test_dominating_set_properties(self):
        g = randomize_weights(grid_graph(6, 6), 3, seed=1)
        for r in (2, 4, 8):
            w = weighted_greedy_dominating_set(g, r)
            # r-dominating
            nearest = multi_source_weighted_distances(g, w)
            assert all(dist <= r for _, dist in nearest.values())
            # pairwise separation >= r
            for p in w:
                ball = weighted_distances(g, p, radius=r - 1)
                assert all(q == p or q not in w for q in ball)

    def test_hierarchy_validates(self):
        for seed in (1, 2):
            g = randomize_weights(random_tree(40, seed), 4, seed)
            WeightedNetHierarchy(g).validate()

    def test_nearest_net_point_bound(self):
        g = randomize_weights(cycle_graph(24), 5, seed=3)
        h = WeightedNetHierarchy(g)
        for level in range(h.top_level + 1):
            for v in g.vertices():
                point, dist = h.nearest_net_point(level, v)
                assert point in h.net(level)
                assert dist <= (1 << level)

    def test_net_sizes_shrink(self):
        g = randomize_weights(grid_graph(7, 7), 2, seed=4)
        sizes = WeightedNetHierarchy(g).net_sizes()
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))


class TestWeightedScheme:
    def test_exact_without_faults_small(self):
        g = WeightedGraph.from_edges(
            4, [(0, 1, 3), (1, 2, 4), (2, 3, 2), (0, 3, 20)]
        )
        scheme = WeightedForbiddenSetLabeling(g, epsilon=1.0)
        assert scheme.query(0, 3).distance == 9
        assert scheme.query(0, 3, vertex_faults=[1]).distance == 20
        assert scheme.query(0, 3, vertex_faults=[1], edge_faults=[(0, 3)]).distance == math.inf

    def test_heavy_edge_usable_next_to_fault(self):
        # the heavy edge exceeds lambda at the lowest level, but the
        # graph-edge clause must keep it usable when a fault forces it
        g = WeightedGraph.from_edges(
            5, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (0, 4, 50)]
        )
        scheme = WeightedForbiddenSetLabeling(g, epsilon=1.0)
        assert scheme.query(0, 4, vertex_faults=[2]).distance == 50

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sandwich_randomized(self, seed):
        base = grid_graph(6, 6)
        g = randomize_weights(base, 4, seed)
        scheme = WeightedForbiddenSetLabeling(g, epsilon=1.0)
        bound = scheme.stretch_bound()
        rng = random.Random(seed)
        for _ in range(25):
            s, t = rng.sample(range(36), 2)
            vf = [v for v in rng.sample(range(36), 3) if v not in (s, t)]
            d_true = weighted_distances_avoiding(g, s, vf).get(t, math.inf)
            d_hat = scheme.query(s, t, vertex_faults=vf).distance
            if math.isinf(d_true):
                assert math.isinf(d_hat)
            else:
                assert d_true <= d_hat <= bound * d_true + 1e-9

    def test_connectivity_exact(self):
        g = randomize_weights(cycle_graph(16), 6, seed=5)
        scheme = WeightedForbiddenSetLabeling(g, epsilon=2.0)
        assert scheme.connectivity(0, 8)
        assert not scheme.connectivity(0, 8, vertex_faults=[4, 12])

    def test_bad_forbidden_edge(self):
        g = WeightedGraph.from_unweighted(path_graph(4))
        scheme = WeightedForbiddenSetLabeling(g, epsilon=1.0)
        with pytest.raises(QueryError):
            scheme.query(0, 3, edge_faults=[(0, 2)])

    def test_labels_roundtrip_through_codec(self):
        from repro.labeling import decode_label, encode_label

        g = randomize_weights(cycle_graph(12), 3, seed=6)
        scheme = WeightedForbiddenSetLabeling(g, epsilon=1.0)
        label = scheme.label(0)
        restored = decode_label(encode_label(label))
        assert restored.levels.keys() == label.levels.keys()
        for i in label.levels:
            assert restored.levels[i].points == label.levels[i].points
            assert restored.levels[i].graph_edges == label.levels[i].graph_edges

    def test_unit_mode(self):
        from repro.labeling import LabelingOptions

        g = randomize_weights(grid_graph(5, 5), 2, seed=7)
        scheme = WeightedForbiddenSetLabeling(
            g, epsilon=1.0, options=LabelingOptions(low_level="unit")
        )
        d_true = weighted_distances_avoiding(g, 0, [12]).get(24, math.inf)
        d_hat = scheme.query(0, 24, vertex_faults=[12]).distance
        if math.isinf(d_true):
            assert math.isinf(d_hat)
        else:
            assert d_true <= d_hat <= scheme.stretch_bound() * d_true


@settings(max_examples=10, deadline=None)
@given(st.integers(4, 30), st.integers(1, 6), st.integers(0, 10**6))
def test_weighted_sandwich_property(n, max_weight, seed):
    g = randomize_weights(random_tree(n, seed), max_weight, seed)
    scheme = WeightedForbiddenSetLabeling(g, epsilon=1.0)
    rng = random.Random(seed)
    s, t = rng.sample(range(n), 2)
    faults = [v for v in rng.sample(range(n), min(2, n - 2)) if v not in (s, t)]
    d_true = weighted_distances_avoiding(g, s, faults).get(t, math.inf)
    d_hat = scheme.query(s, t, vertex_faults=faults).distance
    if math.isinf(d_true):
        assert math.isinf(d_hat)
    else:
        assert d_true <= d_hat <= scheme.stretch_bound() * d_true + 1e-9
