"""Metamorphic battery for the label-only decoder.

Three relations that must hold across *transformed* inputs, checked on
fully seeded instances (deterministic — no test flakiness):

* **monotonicity** — growing the fault set ``F ⊆ F'`` never decreases
  the decoded distance ``δ``: removing more of the graph can only push
  vertices apart.  (Not a literal corollary of the paper's stretch
  bound, since fault labels contribute sketch edges — which is exactly
  why it is worth pinning empirically.)
* **sandwich** — ``d_{G\\F} ≤ δ ≤ (1+ε)·d_{G\\F}`` against BFS ground
  truth recomputed on the surviving graph.
* **cost envelope** — the traced Dijkstra op counts stay within
  ``C·(1+1/ε)^{2α}·(|F|+2)²·log₂(n+1)`` where ``α`` is the measured
  doubling dimension — the paper's query-cost shape, with an
  empirically calibrated constant (worst observed ratio ≈ 5.6; C = 24
  leaves 4× headroom).

Plus the meta-invariant that makes the obs layer trustworthy:
tracing a decode must never change its answer.

The whole battery runs twice — once per decoder backend (the legacy
object-graph ``decode_distance`` and the array-native
:class:`KernelDecoder`) — via the ``decode`` fixture, so every
metamorphic relation is pinned on both engines.
"""

import math
import random

import pytest

from repro.graphs import generators as gen
from repro.graphs.doubling import doubling_dimension_estimate
from repro.graphs.traversal import bfs_distances_avoiding
from repro.labeling import FaultSet, ForbiddenSetLabeling, decode_distance
from repro.labeling.kernel import KernelDecoder
from repro.obs.trace import SPAN_DIJKSTRA, Tracer

ENVELOPE_CONSTANT = 24.0

FAMILIES = [
    ("grid:6x6", lambda: gen.grid_graph(6, 6)),
    ("cycle:32", lambda: gen.cycle_graph(32)),
    ("road:5x5", lambda: gen.road_like_graph(5, 5, seed=2)),
    ("tree:30", lambda: gen.random_tree(30, seed=4)),
]


@pytest.fixture(scope="module", params=FAMILIES, ids=[f[0] for f in FAMILIES])
def instance(request):
    name, build = request.param
    graph = build()
    epsilon = 1.0
    scheme = ForbiddenSetLabeling(graph, epsilon)
    labels = [scheme.label(v) for v in graph.vertices()]
    return graph, epsilon, scheme, labels


def fault_chain(n, s, t, rng, length=3, step=2):
    """A growing chain ``F_0 ⊂ F_1 ⊂ …`` avoiding the endpoints."""
    pool = [v for v in range(n) if v not in (s, t)]
    rng.shuffle(pool)
    chain = []
    for i in range(length):
        chain.append(tuple(sorted(pool[: (i + 1) * step])))
    return chain


@pytest.fixture(scope="module", params=["legacy", "kernel"])
def decode(request):
    """Backend-parameterized decode helper: one battery, both engines.

    The kernel instance is module-scoped on purpose — its cross-query
    memo caches stay warm across the battery, so the relations also
    cover the cached paths.
    """
    if request.param == "kernel":
        kernel = KernelDecoder()

        def _decode(labels, s, t, faults, tracer=None):
            fault_set = FaultSet(vertex_labels=[labels[f] for f in faults])
            return kernel.decode(
                labels[s], labels[t], fault_set, tracer=tracer
            )

        return _decode

    def _decode(labels, s, t, faults, tracer=None):
        fault_set = FaultSet(vertex_labels=[labels[f] for f in faults])
        return decode_distance(labels[s], labels[t], fault_set, tracer=tracer)

    return _decode


def dijkstra_ops(tracer: Tracer) -> int:
    total = 0
    for span in tracer.find(SPAN_DIJKSTRA):
        total += (
            span.attrs.get("nodes_settled", 0)
            + span.attrs.get("edges_scanned", 0)
            + span.attrs.get("heap_updates", 0)
        )
    return int(total)


class TestMonotonicityUnderGrowingFaults:
    def test_delta_never_decreases(self, instance, decode):
        graph, _, _, labels = instance
        n = graph.num_vertices
        rng = random.Random(0xD0)
        for _ in range(15):
            s, t = rng.sample(range(n), 2)
            previous = decode(labels, s, t, ()).distance
            for faults in fault_chain(n, s, t, rng):
                current = decode(labels, s, t, faults).distance
                assert current >= previous, (
                    f"δ({s},{t}) dropped from {previous} to {current} "
                    f"when the fault set grew to {faults}"
                )
                previous = current


class TestSandwichAgainstGroundTruth:
    def test_within_stretch_of_bfs(self, instance, decode):
        graph, _, scheme, labels = instance
        n = graph.num_vertices
        bound = scheme.stretch_bound()
        rng = random.Random(0xD1)
        for _ in range(15):
            s, t = rng.sample(range(n), 2)
            for faults in fault_chain(n, s, t, rng, length=2):
                d_true = bfs_distances_avoiding(
                    graph, s, set(faults)
                ).get(t, math.inf)
                delta = decode(labels, s, t, faults).distance
                if math.isinf(d_true):
                    assert math.isinf(delta)
                else:
                    assert d_true <= delta <= bound * d_true + 1e-9


class TestCostEnvelope:
    def test_traced_ops_within_envelope(self, instance, decode):
        graph, epsilon, _, labels = instance
        n = graph.num_vertices
        alpha = doubling_dimension_estimate(graph, seed=0)
        rng = random.Random(0xD2)
        for _ in range(15):
            s, t = rng.sample(range(n), 2)
            for faults in ((), *fault_chain(n, s, t, rng, length=2)):
                tracer = Tracer()
                decode(labels, s, t, faults, tracer=tracer)
                envelope = (
                    ENVELOPE_CONSTANT
                    * (1 + 1 / epsilon) ** (2 * alpha)
                    * (len(faults) + 2) ** 2
                    * math.log2(n + 1)
                )
                ops = dijkstra_ops(tracer)
                assert ops <= envelope, (
                    f"query({s},{t}) with |F|={len(faults)} cost {ops} ops, "
                    f"envelope {envelope:.0f} (alpha={alpha:.2f})"
                )


class TestTracingIsTransparent:
    def test_traced_and_untraced_answers_identical(self, instance, decode):
        graph, _, _, labels = instance
        n = graph.num_vertices
        rng = random.Random(0xD3)
        for _ in range(12):
            s, t = rng.sample(range(n), 2)
            for faults in fault_chain(n, s, t, rng, length=2):
                plain = decode(labels, s, t, faults)
                traced = decode(labels, s, t, faults, tracer=Tracer())
                assert plain.distance == traced.distance
                assert plain.path == traced.path
                assert plain.sketch_vertices == traced.sketch_vertices
                assert plain.sketch_edges == traced.sketch_edges

    def test_span_counts_match_result(self, instance, decode):
        _, _, _, labels = instance
        tracer = Tracer()
        result = decode(labels, 0, 1, (), tracer=tracer)
        (root,) = tracer.find("decode")
        assert root.attrs["sketch_vertices"] == result.sketch_vertices
        assert root.attrs["sketch_edges"] == result.sketch_edges
        assert len(tracer.find(SPAN_DIJKSTRA)) == 1
