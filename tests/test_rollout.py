"""Tests for the rollout layer: manifest codec, incremental relabeling,
MVCC store versioning, coordinator lifecycle, crash recovery, chaos
rollout events, and the mid-rollout crash battery."""

import math

import pytest

from repro.chaos.plan import ChaosEvent, FaultPlan
from repro.chaos.service_runner import run_service_plan
from repro.durability.fs import SimulatedFS
from repro.exceptions import (
    GraphError,
    QueryError,
    RolloutError,
    ServiceError,
    SimulatedCrashError,
    StorageCorruptionError,
)
from repro.graphs.generators import grid_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances
from repro.labeling.decoder import decode_distance
from repro.labeling.encoding import decode_label
from repro.obs.registry import Registry
from repro.rollout import (
    GenerationEntry,
    GraphChange,
    IncrementalRelabeler,
    RolloutCoordinator,
    apply_change,
    decode_manifest,
    encode_manifest,
    initial_manifest,
    load_manifest,
    recover_rollout,
    store_manifest,
)
from repro.rollout.battery import exhaustive_rollout_battery
from repro.rollout.manifest import (
    STATE_ABORTED,
    STATE_COMMITTED,
    STATE_RETIRED,
    STATE_STAGING,
)
from repro.service.store import ShardedLabelStore


class TestManifest:
    def test_roundtrip(self):
        manifest = initial_manifest(0, 4).with_entry(
            GenerationEntry(1, STATE_STAGING, 4)
        )
        assert decode_manifest(encode_manifest(manifest)) == manifest

    def test_commit_retires_predecessor(self):
        manifest = initial_manifest(0, 2).with_entry(
            GenerationEntry(1, STATE_STAGING, 2)
        )
        committed = manifest.committing(1)
        assert committed.committed_version == 1
        assert committed.entry(1).state == STATE_COMMITTED
        assert committed.entry(0).state == STATE_RETIRED

    def test_abort_requires_staging(self):
        manifest = initial_manifest(0, 2)
        with pytest.raises(RolloutError):
            manifest.aborting(0)  # committed, not staging
        staged = manifest.with_entry(GenerationEntry(1, STATE_STAGING, 2))
        assert staged.aborting(1).entry(1).state == STATE_ABORTED

    def test_two_committed_generations_is_corruption(self):
        with pytest.raises(RolloutError):
            from repro.rollout.manifest import RolloutManifest

            RolloutManifest(
                committed_version=0,
                entries=(
                    GenerationEntry(0, STATE_COMMITTED, 2),
                    GenerationEntry(1, STATE_COMMITTED, 2),
                ),
            )

    def test_corrupt_bytes_detected(self):
        blob = bytearray(encode_manifest(initial_manifest(0, 2)))
        blob[-1] ^= 0xFF  # break the CRC
        with pytest.raises(StorageCorruptionError):
            decode_manifest(bytes(blob))

    def test_load_missing_manifest(self):
        with pytest.raises(RolloutError):
            load_manifest(SimulatedFS(seed=0), "nowhere")

    def test_store_and_load(self):
        fs = SimulatedFS(seed=0)
        manifest = initial_manifest(3, 5)
        store_manifest(fs, "root", manifest)
        assert load_manifest(fs, "root") == manifest


class TestGraphChange:
    def test_empty_change_rejected(self):
        with pytest.raises(RolloutError):
            GraphChange()

    def test_edges_normalized(self):
        change = GraphChange(removed_edges=((5, 2),))
        assert change.removed_edges == ((2, 5),)

    def test_apply_validates(self):
        g = path_graph(5)
        with pytest.raises(GraphError):
            apply_change(g, GraphChange(removed_edges=((0, 4),)))  # missing
        with pytest.raises(GraphError):
            apply_change(g, GraphChange(added_edges=((0, 1),)))  # exists
        new = apply_change(g, GraphChange(added_edges=((0, 4),)))
        assert new.has_edge(0, 4)
        assert not g.has_edge(0, 4)  # original untouched


class TestIncrementalRelabeler:
    def test_plan_validates_against_full_rebuild(self):
        g = grid_graph(4, 4)
        relabeler = IncrementalRelabeler(g, epsilon=1.0)
        plan = relabeler.plan(GraphChange(removed_edges=((0, 1),)))
        relabeler.validate(plan)  # byte-equality oracle

    def test_commit_advances_the_version(self):
        g = grid_graph(4, 4)
        relabeler = IncrementalRelabeler(g, epsilon=1.0)
        plan = relabeler.plan(GraphChange(removed_edges=((0, 1),)))
        relabeler.commit(plan)
        assert not relabeler.graph.has_edge(0, 1)
        # labels answer for the committed graph
        label_s = decode_label(plan.encoded_labels()[0])
        label_t = decode_label(plan.encoded_labels()[5])
        answer = decode_distance(label_s, label_t).distance
        truth = bfs_distances(plan.new_graph, 0)[5]
        assert truth <= answer <= relabeler.stretch_bound * truth + 1e-9

    def test_locality_on_path_with_pendant(self):
        """A pendant removal on a long path rebuilds strictly fewer
        labels than a full rebuild — and the result is byte-identical
        to one (the acceptance criterion for incrementality)."""
        n = 200
        g = Graph(n + 1)
        for i in range(n - 1):
            g.add_edge(i, i + 1)
        g.add_edge(n // 2, n)
        obs = Registry()
        relabeler = IncrementalRelabeler(g, epsilon=1.5, obs=obs)
        plan = relabeler.plan(GraphChange(removed_vertices=(n,)))
        assert 0 < plan.num_rebuilt < g.num_vertices
        assert plan.num_reused > 0
        assert (
            obs.get_counter_value("repro_labels_rebuilt_total")
            == plan.num_rebuilt
        )
        relabeler.validate(plan)  # decode-equivalent to a full rebuild


def _encoded(graph, epsilon=1.0):
    return IncrementalRelabeler(graph, epsilon).encoded_labels()


def _staged_store(graph, fs, num_shards=4, seed=0):
    relabeler = IncrementalRelabeler(graph, 1.0)
    base = relabeler.encoded_labels()
    plan = relabeler.plan(GraphChange(removed_edges=(next(graph.edges()),)))
    store = ShardedLabelStore(base, num_shards=num_shards, seed=seed)
    store.attach_durability(fs, "rollout-test")
    return store, RolloutCoordinator(store), plan


class TestStoreMVCC:
    def test_pin_survives_commit_unmixed(self):
        g = grid_graph(4, 4)
        fs = SimulatedFS(seed=0)
        store, coordinator, plan = _staged_store(g, fs)
        new = plan.encoded_labels()
        pinned = store.pin()
        probe = 5
        shard = store.replicas(probe)[0]
        old_bytes = store.fetch(shard, probe, pinned).data
        coordinator.stage(1, new)
        coordinator.commit(1)
        # the pinned reader still sees generation 0, new readers see 1
        assert store.fetch(shard, probe, pinned).data == old_bytes
        assert store.fetch(shard, probe).data == new[probe]
        store.unpin(pinned)
        with pytest.raises(QueryError):
            store.fetch(shard, probe, pinned)  # retired and collected

    def test_install_requires_newer_version(self):
        g = grid_graph(3, 3)
        store = ShardedLabelStore(_encoded(g), num_shards=2, seed=0)
        with pytest.raises(ServiceError):
            store.install_generation(0, _encoded(g))

    def test_abort_drops_the_generation(self):
        g = grid_graph(3, 3)
        encoded = _encoded(g)
        store = ShardedLabelStore(encoded, num_shards=2, seed=0)
        store.install_generation(1, encoded)
        assert 1 in store.versions
        store.abort_generation(1)
        assert store.versions == (0,)


class TestCoordinatorAndRecovery:
    def test_stage_rejects_stale_versions(self):
        g = grid_graph(4, 4)
        fs = SimulatedFS(seed=0)
        store, coordinator, plan = _staged_store(g, fs)
        new = plan.encoded_labels()
        coordinator.stage(1, new)
        with pytest.raises(RolloutError):
            coordinator.stage(1, new)  # already in the manifest
        coordinator.commit(1)
        with pytest.raises(RolloutError):
            coordinator.stage(1, new)  # not newer than committed

    def test_crash_before_commit_rolls_back(self):
        g = grid_graph(4, 4)
        fs = SimulatedFS(seed=1)
        store, coordinator, plan = _staged_store(g, fs)
        base = [store.fetch(store.replicas(v)[0], v).data
                for v in range(g.num_vertices)]
        fs.arm_crash(fs.op_count + 10, "torn_write")  # mid-stage
        with pytest.raises(SimulatedCrashError):
            coordinator.stage(1, plan.encoded_labels())
        fs.crash()
        recovery = recover_rollout(fs, "rollout-test", seed=1)
        assert recovery.committed_version == 0
        assert recovery.rolled_back == (1,)
        for v, payload in enumerate(base):
            shard = recovery.store.replicas(v)[0]
            assert recovery.store.fetch(shard, v).data == payload

    def test_crash_after_commit_resumes_on_new_version(self):
        g = grid_graph(4, 4)
        fs = SimulatedFS(seed=2)
        store, coordinator, plan = _staged_store(g, fs, seed=2)
        new = plan.encoded_labels()
        coordinator.stage(1, new)
        coordinator.commit(1)
        fs.crash()  # power loss after the commit point
        recovery = recover_rollout(fs, "rollout-test", seed=2)
        assert recovery.committed_version == 1
        assert recovery.store.versions == (1,)
        for v, payload in enumerate(new):
            shard = recovery.store.replicas(v)[0]
            assert recovery.store.fetch(shard, v).data == payload

    def test_abort_sweeps_the_staged_files(self):
        g = grid_graph(4, 4)
        fs = SimulatedFS(seed=3)
        store, coordinator, plan = _staged_store(g, fs, seed=3)
        coordinator.stage(1, plan.encoded_labels())
        assert fs.listdir("rollout-test/gen-1/shard-0")
        coordinator.abort(1)
        for shard in range(store.num_shards):
            assert fs.listdir(f"rollout-test/gen-1/shard-{shard}") == []
        assert store.versions == (0,)


class TestChaosRolloutEvents:
    def test_event_validation(self):
        with pytest.raises(QueryError):
            ChaosEvent(kind="rollout_begin")  # needs an edge
        with pytest.raises(QueryError):
            ChaosEvent(kind="rollout_crash")

    def test_scripted_commit_schedule(self):
        g = grid_graph(6, 6)
        plan = (
            FaultPlan(seed=7, name="rollout-commit")
            .query(0, 35)
            .rollout_begin(0, 1)
            .query(0, 35)  # judged against the old graph while staged
            .rollout_commit()
            .query(0, 1)  # judged against the new graph
            .query(5, 30)
        )
        report = run_service_plan(g, plan)
        assert report.ok, report.violations

    def test_scripted_abort_schedule(self):
        g = grid_graph(6, 6)
        plan = (
            FaultPlan(seed=8, name="rollout-abort")
            .rollout_begin(0, 6)
            .query(0, 6)
            .rollout_abort()
            .query(0, 6)
        )
        report = run_service_plan(g, plan)
        assert report.ok, report.violations

    @pytest.mark.parametrize("seed", [100, 101, 102])
    def test_rollout_crash_recovers_one_version(self, seed):
        g = grid_graph(6, 6)
        plan = (
            FaultPlan(seed=seed, name=f"rollout-crash-{seed}")
            .query(3, 20)
            .rollout_crash(2, 3)
            .query(3, 20)
            .query(0, 35)
        )
        report = run_service_plan(g, plan)
        assert report.ok, report.violations


class TestRolloutBattery:
    def test_smoke(self):
        report = exhaustive_rollout_battery(
            grid_graph(4, 4), epsilon=1.0, seed=0, limit=24
        )
        assert report.kill_point_runs == 24
        assert report.crashes_fired == 24
        assert report.passed, report.violations[:5]
        assert report.label_checks > 0
        assert report.probe_queries > 0
        assert 0 < report.locality_rebuilt < report.locality_vertices

    @pytest.mark.chaos
    def test_full_battery(self):
        report = exhaustive_rollout_battery(grid_graph(6, 6), seed=0)
        assert report.kill_point_runs >= 200
        assert report.passed, report.violations[:10]
        assert report.rollbacks > 0
        assert report.resumes > 0  # both sides of the commit point hit
