"""Unit tests for the core Graph class."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graphs import Graph, from_edge_list
from repro.graphs.generators import cycle_graph, path_graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_negative_size_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_add_edge_and_neighbors(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 3)
        assert sorted(g.neighbors(1)) == [0, 3]
        assert g.num_edges == 2

    def test_self_loop_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_duplicate_edge_rejected(self):
        g = Graph(2)
        g.add_edge(0, 1)
        with pytest.raises(GraphError):
            g.add_edge(1, 0)

    def test_out_of_range_vertex_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 2)

    def test_add_edges_bulk(self):
        g = Graph(3)
        g.add_edges([(0, 1), (1, 2)])
        assert g.num_edges == 2


class TestInspection:
    def test_has_edge_symmetric(self):
        g = Graph(3)
        g.add_edge(0, 2)
        assert g.has_edge(0, 2) and g.has_edge(2, 0)
        assert not g.has_edge(0, 1)

    def test_edges_iterates_once_per_edge(self):
        g = cycle_graph(5)
        edges = list(g.edges())
        assert len(edges) == 5
        assert all(u < v for u, v in edges)

    def test_degree(self):
        g = path_graph(3)
        assert g.degree(0) == 1
        assert g.degree(1) == 2

    def test_repr(self):
        assert repr(path_graph(3)) == "Graph(n=3, m=2)"


class TestPorts:
    def test_port_roundtrip(self):
        g = Graph(4)
        g.add_edges([(0, 1), (0, 2), (0, 3)])
        for v in (1, 2, 3):
            port = g.port_to(0, v)
            assert g.neighbor_by_port(0, port) == v

    def test_port_to_missing_edge_raises(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            g.port_to(0, 2)

    def test_bad_port_raises(self):
        g = path_graph(2)
        with pytest.raises(GraphError):
            g.neighbor_by_port(0, 5)


class TestSubgraphWithout:
    def test_vertex_removal_isolates_vertex(self):
        g = path_graph(4)
        h = g.subgraph_without(removed_vertices=[1])
        assert h.num_vertices == 4
        assert h.degree(1) == 0
        assert h.has_edge(2, 3)
        assert not h.has_edge(0, 1)

    def test_edge_removal_any_orientation(self):
        g = path_graph(3)
        h = g.subgraph_without(removed_edges=[(2, 1)])
        assert h.has_edge(0, 1)
        assert not h.has_edge(1, 2)

    def test_copy_is_independent(self):
        g = path_graph(3)
        h = g.copy()
        h.add_edge(0, 2)
        assert not g.has_edge(0, 2)


def test_from_edge_list_dedupes():
    g = from_edge_list(3, [(0, 1), (1, 0), (1, 1), (1, 2)])
    assert g.num_edges == 2


@given(st.integers(2, 40), st.data())
def test_random_graph_handshake_property(n, data):
    pairs = data.draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=80
        )
    )
    g = from_edge_list(n, pairs)
    assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges
    # each listed edge appears in both adjacency lists
    for u, v in g.edges():
        assert u in g.neighbors(v) and v in g.neighbors(u)
