"""Tests for the crash-consistent durability layer.

Covers the simulated filesystem's crash semantics (volatile vs durable
bytes, torn writes, partial flushes, lost renames), the atomic-write
primitive, WAL framing (property-style round trips, zero-record logs,
frame-boundary endings, every truncation offset of the final frame),
snapshots, the durable table, and restart recovery.
"""

import pytest

from repro.durability import (
    CRASH_MODES,
    DurableLabelTable,
    RealFS,
    RecoveryManager,
    SimulatedFS,
    atomic_write,
    decode_snapshot,
    encode_frame,
    encode_snapshot,
    encode_wal_header,
    read_wal,
    remove_stale_tmp,
)
from repro.durability.table import snapshot_path, wal_path
from repro.durability.wal import FRAME_HEADER_SIZE, WAL_HEADER_SIZE
from repro.exceptions import (
    DurabilityError,
    SimulatedCrashError,
    StorageCorruptionError,
)
from repro.util.rng import make_rng


class TestSimulatedFS:
    def test_written_bytes_are_volatile_until_fsync(self):
        fs = SimulatedFS()
        fs.write_bytes("f", b"hello")
        assert fs.read_bytes("f") == b"hello"
        fs.crash()
        assert not fs.exists("f")  # never synced: vanishes

    def test_fsync_makes_bytes_durable(self):
        fs = SimulatedFS()
        fs.write_bytes("f", b"hello")
        fs.fsync("f")
        fs.crash()
        assert fs.read_bytes("f") == b"hello"

    def test_crash_reverts_to_last_synced_content(self):
        fs = SimulatedFS()
        fs.write_bytes("f", b"old")
        fs.fsync("f")
        fs.write_bytes("f", b"new-and-longer")
        fs.crash()
        assert fs.read_bytes("f") == b"old"

    def test_torn_write_leaves_strict_prefix(self):
        for seed in range(10):
            fs = SimulatedFS(seed=seed)
            fs.arm_crash(0, "torn_write")
            with pytest.raises(SimulatedCrashError):
                fs.write_bytes("f", b"0123456789")
            fs.crash()
            if fs.exists("f"):
                content = fs.read_bytes("f")
                assert b"0123456789".startswith(content)
                assert len(content) < 10  # never the full write

    def test_torn_append_extends_with_durable_prefix(self):
        fs = SimulatedFS(seed=3)
        fs.append_bytes("f", b"base")
        fs.fsync("f")
        fs.arm_crash(fs.op_count, "torn_write")
        with pytest.raises(SimulatedCrashError):
            fs.append_bytes("f", b"XYZW")
        fs.crash()
        content = fs.read_bytes("f")
        assert content.startswith(b"base")
        assert len(content) < len(b"baseXYZW")

    def test_partial_flush_persists_prefix_of_delta(self):
        fs = SimulatedFS(seed=7)
        fs.append_bytes("f", b"AA")
        fs.fsync("f")
        fs.append_bytes("f", b"BBBB")
        fs.arm_crash(fs.op_count, "partial_flush")
        with pytest.raises(SimulatedCrashError):
            fs.fsync("f")
        fs.crash()
        content = fs.read_bytes("f")
        assert content.startswith(b"AA")
        assert b"AABBBB".startswith(content)

    def test_lost_rename_never_lands(self):
        fs = SimulatedFS()
        fs.write_bytes("dst", b"old")
        fs.fsync("dst")
        fs.write_bytes("src", b"new")
        fs.fsync("src")
        fs.arm_crash(fs.op_count, "lost_rename")
        with pytest.raises(SimulatedCrashError):
            fs.replace("src", "dst")
        fs.crash()
        assert fs.read_bytes("dst") == b"old"

    def test_crash_just_after_rename_lands(self):
        """Non-lost modes at a replace kill-point model crash-after-commit."""
        fs = SimulatedFS()
        fs.write_bytes("dst", b"old")
        fs.fsync("dst")
        fs.write_bytes("src", b"new")
        fs.fsync("src")
        fs.arm_crash(fs.op_count, "torn_write")
        with pytest.raises(SimulatedCrashError):
            fs.replace("src", "dst")
        fs.crash()
        assert fs.read_bytes("dst") == b"new"
        assert not fs.exists("src")

    def test_unarmed_replace_is_atomic(self):
        fs = SimulatedFS()
        fs.write_bytes("src", b"data")
        fs.fsync("src")
        fs.replace("src", "dst")
        assert not fs.exists("src")
        assert fs.read_bytes("dst") == b"data"

    def test_every_op_counts_a_kill_point(self):
        fs = SimulatedFS()
        fs.write_bytes("a", b"1")
        fs.append_bytes("a", b"2")
        fs.fsync("a")
        fs.replace("a", "b")
        assert fs.op_count == 4
        assert [op for op, _ in fs.op_log] == [
            "write", "append", "fsync", "replace"
        ]

    def test_arm_validates_inputs(self):
        fs = SimulatedFS()
        with pytest.raises(DurabilityError):
            fs.arm_crash(0, "meteor_strike")
        with pytest.raises(DurabilityError):
            fs.arm_crash(-1, "torn_write")

    def test_listdir_is_sorted_and_scoped(self):
        fs = SimulatedFS()
        for name in ("d/b", "d/a", "d/sub/c", "other"):
            fs.write_bytes(name, b"x")
        assert fs.listdir("d") == ["a", "b"]


class TestAtomicWrite:
    def test_installs_new_content(self):
        fs = SimulatedFS()
        atomic_write(fs, "f", b"payload")
        fs.crash()
        assert fs.read_bytes("f") == b"payload"

    def test_crash_at_every_kill_point_leaves_old_or_new(self):
        for mode in CRASH_MODES:
            for kill in range(3):  # write, fsync, replace
                fs = SimulatedFS(seed=kill)
                atomic_write(fs, "f", b"old")
                fs.arm_crash(fs.op_count + kill, mode)
                with pytest.raises(SimulatedCrashError):
                    atomic_write(fs, "f", b"new")
                fs.crash()
                assert fs.read_bytes("f") in (b"old", b"new")

    def test_stale_tmp_swept(self):
        fs = SimulatedFS()
        fs.write_bytes("d/f.tmp", b"junk")
        fs.fsync("d/f.tmp")
        fs.write_bytes("d/keep", b"ok")
        fs.fsync("d/keep")
        assert remove_stale_tmp(fs, "d") == ["f.tmp"]
        assert fs.listdir("d") == ["keep"]


def _random_records(rng, count):
    return [
        bytes(rng.randrange(256) for _ in range(rng.randrange(0, 40)))
        for _ in range(count)
    ]


class TestWalFraming:
    def test_round_trip_random_record_sequences(self):
        """Property: encode-then-read returns the records exactly."""
        for seed in range(20):
            rng = make_rng(seed)
            base = rng.randrange(100)
            records = _random_records(rng, rng.randrange(1, 12))
            blob = encode_wal_header(base) + b"".join(
                encode_frame(r) for r in records
            )
            replay = read_wal(blob)
            assert replay.base_lsn == base
            assert list(replay.records) == records
            assert replay.clean
            assert replay.last_lsn == base + len(records)

    def test_zero_record_log(self):
        replay = read_wal(encode_wal_header(7))
        assert replay.base_lsn == 7
        assert replay.records == ()
        assert replay.clean
        assert replay.last_lsn == 7

    def test_log_ending_exactly_at_frame_boundary(self):
        blob = encode_wal_header(0) + encode_frame(b"abc") + encode_frame(b"")
        replay = read_wal(blob)
        assert replay.clean
        assert replay.valid_end == len(blob)
        assert list(replay.records) == [b"abc", b""]

    def test_every_truncation_offset_of_final_frame(self):
        """Cutting anywhere inside the last frame loses only that frame."""
        records = [b"first-record", b"second", b"the-final-record"]
        frames = [encode_frame(r) for r in records]
        prefix = encode_wal_header(3) + frames[0] + frames[1]
        final = frames[2]
        for cut in range(len(final)):
            replay = read_wal(prefix + final[:cut])
            assert list(replay.records) == records[:2], f"cut={cut}"
            assert replay.valid_end == len(prefix)
            if cut > 0:
                assert not replay.clean
                assert replay.torn_bytes == cut
                assert replay.torn_reason is not None
        # the full final frame parses again
        assert list(read_wal(prefix + final).records) == records

    def test_corrupt_frame_stops_replay(self):
        frames = [encode_frame(b"keep"), encode_frame(b"damaged")]
        blob = bytearray(encode_wal_header(0) + frames[0] + frames[1])
        blob[-1] ^= 0xFF  # flip a payload byte of the last frame
        replay = read_wal(bytes(blob))
        assert list(replay.records) == [b"keep"]
        assert not replay.clean
        assert "checksum" in replay.torn_reason

    def test_bad_header_is_corruption_not_torn_tail(self):
        with pytest.raises(StorageCorruptionError):
            read_wal(b"NOPE" + bytes(WAL_HEADER_SIZE - 4))
        damaged = bytearray(encode_wal_header(0))
        damaged[6] ^= 0x01  # base LSN byte: header CRC must catch it
        with pytest.raises(StorageCorruptionError):
            read_wal(bytes(damaged))
        with pytest.raises(StorageCorruptionError):
            read_wal(encode_wal_header(0)[: WAL_HEADER_SIZE - 2])

    def test_negative_base_lsn_rejected(self):
        with pytest.raises(DurabilityError):
            encode_wal_header(-1)

    def test_frame_header_size_is_stable(self):
        assert len(encode_frame(b"")) == FRAME_HEADER_SIZE


class TestSnapshot:
    def test_round_trip(self):
        entries = {3: b"three", 1: b"one", 2: b""}
        lsn, decoded = decode_snapshot(encode_snapshot(17, entries))
        assert lsn == 17
        assert decoded == entries

    def test_equal_states_give_equal_bytes(self):
        a = encode_snapshot(5, {2: b"x", 9: b"y"})
        b = encode_snapshot(5, dict(reversed(list({2: b"x", 9: b"y"}.items()))))
        assert a == b

    def test_any_corruption_raises(self):
        blob = bytearray(encode_snapshot(4, {1: b"abc", 2: b"defg"}))
        for index in range(len(blob)):
            damaged = bytearray(blob)
            damaged[index] ^= 0x55
            with pytest.raises(StorageCorruptionError):
                decode_snapshot(bytes(damaged))

    def test_truncation_raises(self):
        blob = encode_snapshot(4, {1: b"abc"})
        for cut in range(len(blob)):
            with pytest.raises(StorageCorruptionError):
                decode_snapshot(blob[:cut])


class TestDurableTable:
    def _reopen(self, fs):
        table, report = RecoveryManager(fs).recover("t")
        return table, report

    def test_put_delete_state(self):
        fs = SimulatedFS()
        table = DurableLabelTable.create(fs, "t")
        assert table.put(1, b"one") == 1
        assert table.put(2, b"two") == 2
        assert table.delete(1) == 3
        assert table.state() == {2: b"two"}
        assert table.vertices() == [2]
        assert table.get(1) is None
        assert table.last_lsn == 3

    def test_reopen_replays_wal(self):
        fs = SimulatedFS()
        table = DurableLabelTable.create(fs, "t")
        table.put(1, b"one")
        table.put(2, b"two")
        table.delete(1)
        reopened, report = self._reopen(fs)
        assert reopened.state() == {2: b"two"}
        assert reopened.last_lsn == 3
        assert report.records_replayed == 3
        assert report.clean

    def test_compact_then_reopen(self):
        fs = SimulatedFS()
        table = DurableLabelTable.create(fs, "t")
        table.put(1, b"one")
        table.put(2, b"two")
        assert table.compact() == 2
        table.put(3, b"three")
        reopened, report = self._reopen(fs)
        assert reopened.state() == {1: b"one", 2: b"two", 3: b"three"}
        assert report.snapshot_present
        assert report.snapshot_lsn == 2
        assert report.records_replayed == 1

    def test_compaction_crash_window_is_replay_safe(self):
        """Snapshot installed but WAL not yet reset: nothing applies twice."""
        fs = SimulatedFS()
        table = DurableLabelTable.create(fs, "t")
        table.put(1, b"one")
        table.delete(1)
        table.put(1, b"one-again")
        # install the snapshot by hand, leaving the old WAL in place
        fs.write_bytes(
            snapshot_path("t"), encode_snapshot(table.last_lsn, table.state())
        )
        fs.fsync(snapshot_path("t"))
        reopened, report = self._reopen(fs)
        assert reopened.state() == {1: b"one-again"}
        assert report.records_skipped == 3
        assert report.records_replayed == 0

    def test_torn_wal_tail_truncated_on_recovery(self):
        fs = SimulatedFS()
        table = DurableLabelTable.create(fs, "t")
        table.put(1, b"one")
        table.put(2, b"two")
        path = wal_path("t")
        blob = fs.read_bytes(path)
        fs.write_bytes(path, blob[:-3])  # tear the final frame
        fs.fsync(path)
        reopened, report = self._reopen(fs)
        assert reopened.state() == {1: b"one"}
        assert report.torn_bytes_truncated > 0
        assert report.torn_reason is not None
        # the repair is durable: a second recovery is clean
        _, second = self._reopen(fs)
        assert second.clean

    def test_missing_wal_recovers_empty(self):
        fs = SimulatedFS()
        table, report = self._reopen(fs)
        assert table.state() == {}
        assert not report.wal_present
        # and the fresh WAL is durable
        reopened, second = self._reopen(fs)
        assert second.wal_present
        assert reopened.state() == {}

    def test_wal_base_beyond_snapshot_is_corruption(self):
        fs = SimulatedFS()
        fs.write_bytes(snapshot_path("t"), encode_snapshot(2, {1: b"x"}))
        fs.fsync(snapshot_path("t"))
        fs.write_bytes(wal_path("t"), encode_wal_header(9))
        fs.fsync(wal_path("t"))
        with pytest.raises(StorageCorruptionError):
            RecoveryManager(fs).recover("t")

    def test_works_on_the_real_filesystem(self, tmp_path):
        fs = RealFS()
        root = str(tmp_path / "tables" / "t")
        table = DurableLabelTable.create(fs, root)
        table.put(4, b"four")
        table.put(5, b"five")
        table.compact()
        table.delete(4)
        reopened, report = RecoveryManager(fs).recover(root)
        assert reopened.state() == {5: b"five"}
        assert report.snapshot_present
