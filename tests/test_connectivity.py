"""Tests for connectivity labeling and the Section 3 lower bound."""

import math

import pytest

from repro.baselines import ExactRecomputeOracle
from repro.connectivity import (
    ForbiddenSetConnectivityLabeling,
    family_log2_size,
    lower_bound_bits,
    reconstruct_graph_from_oracle,
    theoretical_lower_bound_bits,
)
from repro.exceptions import GraphError
from repro.graphs.generators import (
    cycle_graph,
    grid_graph,
    king_grid,
    path_graph,
    random_tree,
    sample_family_graph,
)
from repro.workloads import clustered_fault_queries, random_queries


class TestConnectivityScheme:
    def test_exact_on_random_workload(self):
        g = grid_graph(7, 7)
        scheme = ForbiddenSetConnectivityLabeling(g)
        exact = ExactRecomputeOracle(g)
        for q in random_queries(g, 40, max_vertex_faults=6, max_edge_faults=2, seed=1):
            expected = exact.connectivity(
                q.s, q.t, vertex_faults=q.vertex_faults, edge_faults=q.edge_faults
            )
            assert (
                scheme.connected(
                    q.s, q.t, vertex_faults=q.vertex_faults, edge_faults=q.edge_faults
                )
                == expected
            )

    def test_exact_on_clustered_faults(self):
        g = random_tree(50, seed=2)
        scheme = ForbiddenSetConnectivityLabeling(g)
        exact = ExactRecomputeOracle(g)
        for q in clustered_fault_queries(g, 20, cluster_radius=1, seed=2):
            expected = exact.connectivity(q.s, q.t, vertex_faults=q.vertex_faults)
            assert scheme.connected(q.s, q.t, vertex_faults=q.vertex_faults) == expected

    def test_cut_edge(self):
        scheme = ForbiddenSetConnectivityLabeling(path_graph(10))
        assert not scheme.connected(0, 9, edge_faults=[(4, 5)])
        assert scheme.connected(0, 4, edge_faults=[(4, 5)])

    def test_from_labels_static(self):
        g = cycle_graph(12)
        scheme = ForbiddenSetConnectivityLabeling(g)
        assert ForbiddenSetConnectivityLabeling.connected_from_labels(
            scheme.label(0), scheme.label(6)
        )

    def test_coarse_labels_smaller_than_precise(self):
        # on a long path the epsilon dependence is visible: the coarse
        # (connectivity) labels are much smaller than eps=0.25 labels
        from repro.labeling import ForbiddenSetLabeling

        g = path_graph(256)
        coarse = ForbiddenSetConnectivityLabeling(g).label_statistics([128])
        precise = ForbiddenSetLabeling(g, epsilon=0.25).label_statistics([128])
        assert coarse["max_bits"] < precise["max_bits"]


class TestLowerBound:
    def test_family_size_positive_and_growing(self):
        assert family_log2_size(3, 2) > 0
        assert family_log2_size(4, 2) > family_log2_size(3, 2)

    def test_lower_bound_bits_concrete(self):
        # per-label bound = optional-edge count / n, strictly positive
        assert lower_bound_bits(4, 2) > 0

    def test_lower_bound_grows_with_alpha(self):
        # at comparable n, higher doubling dimension forces longer labels:
        # alpha = 2d, compare d=2 (n=7^2=49) vs d=4 (n=3^4=81)
        assert lower_bound_bits(3, 4) > lower_bound_bits(7, 2)

    def test_theoretical_bound_shape(self):
        assert theoretical_lower_bound_bits(1024, 4) == pytest.approx(4 + 10)
        with pytest.raises(GraphError):
            theoretical_lower_bound_bits(1, 4)

    def test_reconstruction_attack_exact(self):
        """The everywhere-failure attack reconstructs G exactly, using our
        own labeling scheme as the oracle — the information-theoretic core
        of Theorem 3.1, end-to-end."""
        g = sample_family_graph(3, 2, seed=7)
        scheme = ForbiddenSetConnectivityLabeling(g)

        def oracle(i, j, forbidden):
            return scheme.connected(i, j, vertex_faults=forbidden)

        rebuilt = reconstruct_graph_from_oracle(oracle, g.num_vertices)
        assert sorted(rebuilt.edges()) == sorted(g.edges())

    def test_reconstruction_attack_on_path(self):
        g = path_graph(9)
        scheme = ForbiddenSetConnectivityLabeling(g)

        def oracle(i, j, forbidden):
            return scheme.connected(i, j, vertex_faults=forbidden)

        rebuilt = reconstruct_graph_from_oracle(oracle, 9)
        assert sorted(rebuilt.edges()) == sorted(g.edges())

    def test_path_labels_pairwise_distinct(self):
        """The n-2 distinct labels argument: our labels on P_n are in fact
        pairwise distinct (each contains its owner at distance 0)."""
        from repro.labeling import encode_label

        g = path_graph(16)
        scheme = ForbiddenSetConnectivityLabeling(g)
        encodings = {encode_label(scheme.label(v)) for v in range(16)}
        assert len(encodings) == 16

    def test_king_grid_doubling_dimension_bounded(self):
        from repro.graphs.doubling import doubling_dimension_estimate

        # the greedy estimator over-covers by a constant factor, so allow
        # slack over the true bound alpha <= d = 2 (paper, Section 3)
        g = king_grid(5, 2)
        assert doubling_dimension_estimate(g, seed=0) <= 3.5

    def test_upper_vs_lower_bound_consistency(self):
        """Our scheme's labels must be at least as long as the
        information-theoretic lower bound for the family instance."""
        g = sample_family_graph(3, 2, seed=1)
        scheme = ForbiddenSetConnectivityLabeling(g)
        stats = scheme.label_statistics()
        assert stats["max_bits"] >= lower_bound_bits(3, 2)
