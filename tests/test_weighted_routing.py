"""Tests for routing on weighted graphs."""

import math
import random

import pytest

from repro.exceptions import GraphError, RoutingError
from repro.graphs.generators import cycle_graph, grid_graph
from repro.graphs.weighted import (
    WeightedGraph,
    weighted_distances,
    weighted_distances_avoiding,
    weighted_first_hops,
)
from repro.routing import WeightedForbiddenSetRouting


def randomize_weights(graph, max_weight, seed):
    rng = random.Random(seed)
    wg = WeightedGraph(graph.num_vertices)
    for u, v in graph.edges():
        wg.add_edge(u, v, rng.randint(1, max_weight))
    return wg


class TestWeightedPorts:
    def test_port_roundtrip(self):
        g = WeightedGraph.from_edges(4, [(0, 1, 2), (0, 2, 3), (0, 3, 4)])
        for v in (1, 2, 3):
            assert g.neighbor_by_port(0, g.port_to(0, v)) == v

    def test_missing_edge(self):
        g = WeightedGraph.from_edges(3, [(0, 1, 1)])
        with pytest.raises(GraphError):
            g.port_to(0, 2)
        with pytest.raises(GraphError):
            g.neighbor_by_port(0, 5)

    def test_edge_weight_lookup(self):
        g = WeightedGraph.from_edges(3, [(0, 1, 7)])
        assert g.edge_weight(0, 1) == 7 == g.edge_weight(1, 0)
        with pytest.raises(GraphError):
            g.edge_weight(0, 2)


class TestWeightedFirstHops:
    def test_hops_make_weighted_progress(self):
        g = randomize_weights(grid_graph(5, 5), 4, seed=1)
        dist, hop = weighted_first_hops(g, 12)
        for target, first in hop.items():
            assert first in [v for v, _ in g.neighbors(12)]
            # stepping through the hop realizes the shortest distance
            assert (
                g.edge_weight(12, first)
                + weighted_distances(g, first)[target]
                == dist[target]
            )

    def test_matches_bfs_on_unit_weights(self):
        from repro.graphs import bfs_first_hops
        from repro.graphs.generators import path_graph

        base = path_graph(10)
        g = WeightedGraph.from_unweighted(base)
        dist_w, _ = weighted_first_hops(g, 0)
        dist_b, _ = bfs_first_hops(base, 0)
        assert dist_w == dist_b


class TestWeightedRouting:
    def test_light_path_preferred(self):
        g = WeightedGraph.from_edges(
            4, [(0, 1, 2), (1, 2, 2), (2, 3, 2), (0, 3, 10)]
        )
        router = WeightedForbiddenSetRouting(g, epsilon=1.0)
        result = router.route(0, 3)
        assert result.cost == 6 and result.route == (0, 1, 2, 3)

    def test_fault_forces_heavy_edge(self):
        g = WeightedGraph.from_edges(
            4, [(0, 1, 2), (1, 2, 2), (2, 3, 2), (0, 3, 10)]
        )
        router = WeightedForbiddenSetRouting(g, epsilon=1.0)
        result = router.route(0, 3, vertex_faults=[1])
        assert result.cost == 10 and result.route == (0, 3)

    def test_disconnected_raises(self):
        g = WeightedGraph.from_unweighted(cycle_graph(8))
        router = WeightedForbiddenSetRouting(g, epsilon=1.0)
        with pytest.raises(RoutingError):
            router.route(0, 4, vertex_faults=[2, 6])

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_stretch_and_avoidance(self, seed):
        g = randomize_weights(grid_graph(6, 6), 4, seed)
        router = WeightedForbiddenSetRouting(g, epsilon=1.0)
        bound = router.stretch_bound()
        rng = random.Random(seed)
        for _ in range(15):
            s, t = rng.sample(range(36), 2)
            vf = [v for v in rng.sample(range(36), 3) if v not in (s, t)]
            d_true = weighted_distances_avoiding(g, s, vf).get(t, math.inf)
            if math.isinf(d_true):
                with pytest.raises(RoutingError):
                    router.route(s, t, vertex_faults=vf)
                continue
            result = router.route(s, t, vertex_faults=vf)
            assert result.route[0] == s and result.route[-1] == t
            assert not set(result.route) & set(vf)
            for a, b in zip(result.route, result.route[1:]):
                assert g.has_edge(a, b)
            assert d_true <= result.cost <= bound * d_true + 1e-9

    def test_edge_fault_avoided(self):
        g = WeightedGraph.from_unweighted(cycle_graph(12), weight=3)
        router = WeightedForbiddenSetRouting(g, epsilon=1.0)
        result = router.route(0, 6, edge_faults=[(2, 3)])
        used = {(min(a, b), max(a, b)) for a, b in zip(result.route, result.route[1:])}
        assert (2, 3) not in used
        assert result.cost == 18  # the long way: 6 edges x 3

    def test_tables_cached(self):
        g = WeightedGraph.from_unweighted(cycle_graph(8))
        router = WeightedForbiddenSetRouting(g, epsilon=1.0)
        assert router.table(2) is router.table(2)
