"""Tests for the array-based BFS: must match the reference implementation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import bfs_distances, from_edge_list
from repro.graphs.fastbfs import BfsScratch
from repro.graphs.generators import cycle_graph, grid_graph, random_tree


class TestEquivalence:
    def test_unbounded_matches_reference(self):
        g = grid_graph(7, 7)
        scratch = BfsScratch(g)
        for source in (0, 24, 48):
            assert scratch.distances(source) == bfs_distances(g, source)

    def test_bounded_matches_reference(self):
        g = grid_graph(7, 7)
        scratch = BfsScratch(g)
        for radius in (0, 1, 3, 10):
            assert scratch.distances(24, radius=radius) == bfs_distances(
                g, 24, radius=radius
            )

    def test_reuse_across_sources(self):
        g = cycle_graph(20)
        scratch = BfsScratch(g)
        for source in range(20):
            assert scratch.distances(source, radius=4) == bfs_distances(
                g, source, radius=4
            )

    def test_restricted(self):
        g = grid_graph(5, 5)
        scratch = BfsScratch(g)
        members = {0, 7, 13, 24}
        expected = {
            v: d for v, d in bfs_distances(g, 12, radius=3).items() if v in members
        }
        assert scratch.restricted(12, 3, members) == expected

    def test_disconnected(self):
        g = from_edge_list(5, [(0, 1), (2, 3)])
        scratch = BfsScratch(g)
        assert scratch.distances(0) == {0: 0, 1: 1}


@settings(max_examples=30, deadline=None)
@given(
    st.integers(2, 40),
    st.integers(0, 10**6),
    st.integers(0, 8),
)
def test_equivalence_property(n, seed, radius):
    g = random_tree(n, seed)
    # add a few extra edges to leave tree-land
    import random

    rng = random.Random(seed)
    for _ in range(min(5, n // 3)):
        a, b = rng.sample(range(n), 2)
        if not g.has_edge(a, b):
            g.add_edge(a, b)
    scratch = BfsScratch(g)
    source = seed % n
    assert scratch.distances(source, radius=radius) == bfs_distances(
        g, source, radius=radius
    )
