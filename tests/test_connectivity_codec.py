"""Tests for the connectivity-only label codec."""

import math

import pytest

from repro.baselines import ExactRecomputeOracle
from repro.connectivity import ForbiddenSetConnectivityLabeling
from repro.graphs.generators import cycle_graph, grid_graph, random_tree
from repro.labeling import FaultSet, ForbiddenSetLabeling, decode_distance, encode_label
from repro.labeling.encoding import (
    decode_connectivity_label,
    encode_connectivity_label,
)
from repro.workloads import random_queries


class TestCodecSemantics:
    def test_smaller_than_full_codec(self):
        g = grid_graph(7, 7)
        scheme = ForbiddenSetLabeling(g, epsilon=8.0)
        full = encode_label(scheme.label(24))
        compact = encode_connectivity_label(scheme.label(24))
        assert len(compact) < len(full)

    def test_structure_preserved(self):
        g = cycle_graph(20)
        scheme = ForbiddenSetLabeling(g, epsilon=8.0)
        label = scheme.label(5)
        restored = decode_connectivity_label(encode_connectivity_label(label))
        assert restored.vertex == 5
        assert restored.levels.keys() == label.levels.keys()
        for i, lvl in label.levels.items():
            r = restored.levels[i]
            assert set(r.points) == set(lvl.points)
            assert set(r.edges) == set(lvl.edges)
            assert set(r.graph_edges) == set(lvl.graph_edges)
            # protected-ball membership identical
            lam = 1 << (i + 1)
            for point in lvl.points:
                assert (lvl.points[point] <= lam) == (r.points[point] <= lam)

    def test_owner_distance_zero(self):
        g = cycle_graph(12)
        scheme = ForbiddenSetLabeling(g, epsilon=8.0)
        restored = decode_connectivity_label(
            encode_connectivity_label(scheme.label(3))
        )
        for lvl in restored.levels.values():
            assert lvl.points[3] == 0


class TestConnectivityThroughCodec:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_exact_connectivity_from_compact_labels(self, seed):
        g = grid_graph(6, 6)
        scheme = ForbiddenSetConnectivityLabeling(g)
        exact = ExactRecomputeOracle(g)
        wire = lambda v: decode_connectivity_label(
            encode_connectivity_label(scheme.label(v))
        )
        for q in random_queries(g, 25, max_vertex_faults=5, max_edge_faults=2,
                                seed=seed):
            faults = FaultSet(
                vertex_labels=[wire(f) for f in q.vertex_faults],
                edge_labels=[(wire(a), wire(b)) for a, b in q.edge_faults],
            )
            result = decode_distance(wire(q.s), wire(q.t), faults)
            expected = exact.connectivity(
                q.s, q.t, vertex_faults=q.vertex_faults, edge_faults=q.edge_faults
            )
            assert (not math.isinf(result.distance)) == expected

    def test_on_trees(self):
        g = random_tree(40, seed=3)
        scheme = ForbiddenSetConnectivityLabeling(g)
        exact = ExactRecomputeOracle(g)
        wire = lambda v: decode_connectivity_label(
            encode_connectivity_label(scheme.label(v))
        )
        for q in random_queries(g, 20, max_vertex_faults=3, seed=3):
            faults = FaultSet(vertex_labels=[wire(f) for f in q.vertex_faults])
            result = decode_distance(wire(q.s), wire(q.t), faults)
            expected = exact.connectivity(q.s, q.t, vertex_faults=q.vertex_faults)
            assert (not math.isinf(result.distance)) == expected

    def test_connectivity_bits_reported(self):
        g = cycle_graph(16)
        scheme = ForbiddenSetConnectivityLabeling(g)
        stats = scheme.connectivity_bits([0, 4, 8])
        full = scheme.label_statistics([0, 4, 8])
        assert 0 < stats["max_bits"] < full["max_bits"]
