"""Tests for bit-exact label serialization."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EncodingError
from repro.graphs.generators import cycle_graph, grid_graph, random_tree
from repro.labeling import (
    FaultSet,
    ForbiddenSetLabeling,
    decode_distance,
    decode_label,
    encode_label,
    encoded_bit_length,
)
from repro.labeling.label import LevelLabel, VertexLabel
from repro.util.bitio import BitWriter


def roundtrip(label):
    restored = decode_label(encode_label(label))
    assert restored.vertex == label.vertex
    assert restored.c == label.c
    assert restored.top_level == label.top_level
    assert restored.levels.keys() == label.levels.keys()
    for i, lvl in label.levels.items():
        assert restored.levels[i].points == lvl.points
        assert restored.levels[i].edges == lvl.edges
        assert restored.levels[i].graph_edges == lvl.graph_edges
    return restored


class TestRoundtrip:
    def test_grid_labels(self):
        scheme = ForbiddenSetLabeling(grid_graph(6, 6), epsilon=1.0)
        for v in (0, 17, 35):
            roundtrip(scheme.label(v))

    def test_cycle_labels(self):
        scheme = ForbiddenSetLabeling(cycle_graph(32), epsilon=0.5)
        roundtrip(scheme.label(10))

    def test_epsilon_survives(self):
        scheme = ForbiddenSetLabeling(cycle_graph(16), epsilon=0.5)
        restored = decode_label(encode_label(scheme.label(0)))
        assert restored.epsilon == pytest.approx(0.5)

    def test_empty_levels_label(self):
        label = VertexLabel(vertex=3, epsilon=1.0, c=2, top_level=5)
        roundtrip(label)

    def test_level_with_no_edges(self):
        label = VertexLabel(vertex=0, epsilon=1.0, c=2, top_level=5)
        label.levels[3] = LevelLabel(level=3, points={0: 0, 9: 4}, edges={})
        roundtrip(label)

    def test_edge_with_missing_endpoint_rejected(self):
        label = VertexLabel(vertex=0, epsilon=1.0, c=2, top_level=5)
        label.levels[3] = LevelLabel(
            level=3, points={0: 0}, edges={(0, 9): 4}
        )
        with pytest.raises(EncodingError):
            encode_label(label)

    def test_bit_length_matches_writer(self):
        scheme = ForbiddenSetLabeling(cycle_graph(16), epsilon=1.0)
        label = scheme.label(0)
        bits = encoded_bit_length(label)
        assert math.ceil(bits / 8) == len(encode_label(label))

    def test_truncated_stream_raises(self):
        scheme = ForbiddenSetLabeling(cycle_graph(16), epsilon=1.0)
        data = encode_label(scheme.label(0))
        with pytest.raises(EncodingError):
            decode_label(data[: len(data) // 4])


class TestDecoderFromBytes:
    """End-to-end: query answered from *serialized* labels only."""

    def test_query_through_bytes(self):
        g = grid_graph(7, 7)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        wire = lambda v: decode_label(encode_label(scheme.label(v)))
        faults = FaultSet(vertex_labels=[wire(24)])
        result = decode_distance(wire(0), wire(48), faults)
        from repro.baselines import ExactRecomputeOracle

        d_true = ExactRecomputeOracle(g).query(0, 48, vertex_faults=[24])
        assert d_true <= result.distance <= 2 * d_true


@settings(max_examples=10, deadline=None)
@given(st.integers(4, 40), st.integers(0, 10**6))
def test_roundtrip_property_random_trees(n, seed):
    g = random_tree(n, seed)
    scheme = ForbiddenSetLabeling(g, epsilon=1.0)
    roundtrip(scheme.label(seed % n))


def test_size_grows_with_content():
    small = VertexLabel(vertex=0, epsilon=1.0, c=2, top_level=5)
    big = VertexLabel(vertex=0, epsilon=1.0, c=2, top_level=5)
    big.levels[3] = LevelLabel(
        level=3, points={i: i for i in range(50)}, edges={}
    )
    assert encoded_bit_length(big) > encoded_bit_length(small)
