"""Tests for named, composable routing policies."""

import math

import pytest

from repro.baselines import ExactRecomputeOracle
from repro.exceptions import QueryError
from repro.graphs.generators import cycle_graph, grid_graph
from repro.routing.policy import PolicyRouter


@pytest.fixture()
def router():
    r = PolicyRouter(grid_graph(6, 6), epsilon=1.0)
    r.define_policy("no-center", vertices=[14, 15, 20, 21])
    r.define_policy("no-top-row", vertices=[5, 11, 17, 23, 29])
    r.define_policy("no-first-link", edges=[(0, 1)])
    return r


class TestPolicyManagement:
    def test_names_listed(self, router):
        assert router.policy_names() == [
            "no-center",
            "no-first-link",
            "no-top-row",
        ]

    def test_redefinition_replaces(self, router):
        router.define_policy("no-center", vertices=[7])
        vertices, _ = router.combined_faults(["no-center"])
        assert vertices == {7}

    def test_drop_policy(self, router):
        router.drop_policy("no-center")
        assert "no-center" not in router.policy_names()
        with pytest.raises(QueryError):
            router.distance(0, 35, policies=["no-center"])

    def test_bad_policy_contents_rejected(self, router):
        with pytest.raises(QueryError):
            router.define_policy("bad-v", vertices=[999])
        with pytest.raises(QueryError):
            router.define_policy("bad-e", edges=[(0, 35)])

    def test_unknown_policy_rejected(self, router):
        with pytest.raises(QueryError):
            router.route(0, 35, policies=["nope"])

    def test_composition_is_union(self, router):
        vertices, edges = router.combined_faults(["no-center", "no-first-link"])
        assert vertices == {14, 15, 20, 21}
        assert edges == {(0, 1)}


class TestPolicyQueries:
    def test_no_policy_is_plain_routing(self, router):
        assert router.route(0, 35).hops == 10
        assert router.distance(0, 35).distance == 10

    def test_route_respects_policy(self, router):
        result = router.route(0, 35, policies=["no-center"])
        assert not set(result.route) & {14, 15, 20, 21}

    def test_distance_matches_exact_within_stretch(self, router):
        g = grid_graph(6, 6)
        exact = ExactRecomputeOracle(g)
        for policies in ([], ["no-center"], ["no-center", "no-top-row"]):
            vertices, edges = router.combined_faults(policies)
            d_true = exact.query(
                0, 35, vertex_faults=vertices, edge_faults=edges
            )
            d_hat = router.distance(0, 35, policies=policies).distance
            assert d_true <= d_hat <= 2 * d_true

    def test_edge_policy(self, router):
        result = router.route(0, 1, policies=["no-first-link"])
        used = {(min(a, b), max(a, b)) for a, b in zip(result.route, result.route[1:])}
        assert (0, 1) not in used

    def test_policy_blocking_endpoint_rejected(self, router):
        with pytest.raises(QueryError):
            router.distance(14, 35, policies=["no-center"])

    def test_disconnection_under_policies(self):
        r = PolicyRouter(cycle_graph(12), epsilon=1.0)
        r.define_policy("cut", vertices=[3, 9])
        assert math.isinf(r.distance(0, 6, policies=["cut"]).distance)

    def test_sessions_cached_per_composition(self, router):
        router.distance(0, 35, policies=["no-center"])
        session_count = len(router._sessions)
        router.distance(3, 33, policies=["no-center"])
        assert len(router._sessions) == session_count  # reused

    def test_redefinition_invalidates_session(self, router):
        first = router.distance(0, 35, policies=["no-center"]).distance
        router.define_policy("no-center", vertices=[])
        second = router.distance(0, 35, policies=["no-center"]).distance
        assert second <= first
