"""Tests for the async gateway: loop, admission, cache, coalescing, sheds.

Everything runs on virtual time — no sleeps, no wall clock — and every
scenario is seeded, so each test is exactly reproducible.
"""

import pytest

from repro.exceptions import GatewayError, QueryError
from repro.gateway import (
    AsyncGateway,
    CachingLabelClient,
    Event,
    Future,
    GatewayConfig,
    GatewayRequest,
    LabelCache,
    QuotaPolicy,
    TokenBucket,
    VirtualLoop,
    WaitingRoom,
)
from repro.graphs.generators import grid_graph
from repro.labeling import ForbiddenSetLabeling
from repro.obs.export import render_prometheus
from repro.obs.registry import Registry
from repro.service import (
    SHED_REASONS,
    DegradationReason,
    QueryService,
    VirtualClock,
)
from repro.service.store import ShardedLabelStore


# ---------------------------------------------------------------------------
# VirtualClock waiter API
# ---------------------------------------------------------------------------


class TestClockWakeups:
    def test_sync_advance_is_unchanged_without_waiters(self):
        clock = VirtualClock()
        clock.advance(5.0)
        assert clock.now == 5.0
        with pytest.raises(QueryError):
            clock.advance(-1.0)

    def test_wakeups_fire_in_due_then_registration_order(self):
        clock = VirtualClock()
        fired = []
        clock.schedule_wakeup(10.0, lambda: fired.append("b"))
        clock.schedule_wakeup(5.0, lambda: fired.append("a"))
        clock.schedule_wakeup(10.0, lambda: fired.append("c"))
        clock.advance(20.0)
        assert fired == ["a", "b", "c"]
        assert clock.now == 20.0

    def test_clock_reads_due_time_inside_callback(self):
        clock = VirtualClock()
        seen = []
        clock.schedule_wakeup(3.0, lambda: seen.append(clock.now))
        clock.advance(10.0)
        assert seen == [3.0]

    def test_cancelled_wakeup_never_fires(self):
        clock = VirtualClock()
        fired = []
        wakeup = clock.schedule_wakeup(5.0, lambda: fired.append(1))
        wakeup.cancel()
        clock.advance(10.0)
        assert fired == []
        assert clock.pending_wakeups() == 0

    def test_next_wakeup_skips_cancelled_heads(self):
        clock = VirtualClock()
        first = clock.schedule_wakeup(5.0, lambda: None)
        clock.schedule_wakeup(8.0, lambda: None)
        assert clock.next_wakeup() == 5.0
        first.cancel()
        assert clock.next_wakeup() == 8.0

    def test_past_wakeup_clamps_to_now(self):
        clock = VirtualClock()
        clock.advance(10.0)
        fired = []
        clock.schedule_wakeup(3.0, lambda: fired.append(clock.now))
        clock.advance(0.0)
        assert fired == [10.0]


# ---------------------------------------------------------------------------
# VirtualLoop
# ---------------------------------------------------------------------------


class TestVirtualLoop:
    def test_tasks_resume_in_fifo_order(self):
        loop = VirtualLoop()
        order = []

        async def worker(tag):
            order.append(f"{tag}-start")
            await loop.sleep(0)
            order.append(f"{tag}-end")

        loop.create_task(worker("a"))
        loop.create_task(worker("b"))
        loop.run_until_idle()
        assert order == ["a-start", "b-start", "a-end", "b-end"]

    def test_sleep_orders_by_due_time(self):
        loop = VirtualLoop()
        order = []

        async def sleeper(tag, ms):
            await loop.sleep(ms)
            order.append((tag, loop.now))

        loop.create_task(sleeper("late", 20.0))
        loop.create_task(sleeper("early", 5.0))
        loop.run_until_idle()
        assert order == [("early", 5.0), ("late", 20.0)]

    def test_run_until_complete_returns_result(self):
        loop = VirtualLoop()

        async def compute():
            await loop.sleep(1.0)
            return 42

        assert loop.run_until_complete(compute()) == 42

    def test_task_exception_propagates_at_await(self):
        loop = VirtualLoop()

        async def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            loop.run_until_complete(boom())

    def test_deadlock_is_detected_not_hung(self):
        loop = VirtualLoop()

        async def forever():
            await Future(loop)

        with pytest.raises(GatewayError, match="deadlock"):
            loop.run_until_complete(forever())

    def test_awaiting_foreign_awaitable_is_rejected(self):
        loop = VirtualLoop()

        class Alien:
            def __await__(self):
                yield "not-a-future"

        async def bad():
            await Alien()

        with pytest.raises(GatewayError, match="not a VirtualLoop awaitable"):
            loop.run_until_complete(bad())

    def test_negative_sleep_raises(self):
        loop = VirtualLoop()

        async def bad():
            await loop.sleep(-1.0)

        with pytest.raises(GatewayError):
            loop.run_until_complete(bad())

    def test_future_double_resolve_raises(self):
        loop = VirtualLoop()
        future = Future(loop)
        future.set_result(1)
        with pytest.raises(GatewayError):
            future.set_result(2)

    def test_future_result_before_done_raises(self):
        loop = VirtualLoop()
        with pytest.raises(GatewayError):
            Future(loop).result()

    def test_event_is_edge_triggered(self):
        loop = VirtualLoop()
        event = Event(loop)
        woken = []

        async def waiter(tag):
            await event.wait()
            woken.append(tag)

        loop.create_task(waiter("a"))
        loop.create_task(waiter("b"))

        async def pulse():
            await loop.sleep(0)  # let both park first
            event.notify()

        loop.create_task(pulse())
        loop.run_until_idle()
        assert woken == ["a", "b"]

    def test_step_count_is_deterministic(self):
        def run():
            loop = VirtualLoop()

            async def busy():
                for _ in range(5):
                    await loop.sleep(1.0)

            for _ in range(3):
                loop.create_task(busy())
            loop.run_until_idle()
            return loop.steps

        assert run() == run()


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate_per_ms=1.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.try_take(1.0)  # one token refilled
        assert not bucket.try_take(1.0)

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate_per_ms=10.0, burst=3.0)
        assert bucket.tokens(100.0) == 3.0

    def test_rejected_take_leaves_tokens(self):
        bucket = TokenBucket(rate_per_ms=1.0, burst=2.0)
        assert not bucket.try_take(0.0, cost=5.0)
        assert bucket.tokens(0.0) == 2.0

    def test_invalid_knobs_raise(self):
        with pytest.raises(GatewayError):
            TokenBucket(rate_per_ms=0.0, burst=1.0)
        with pytest.raises(GatewayError):
            TokenBucket(rate_per_ms=1.0, burst=0.0)


class TestWaitingRoom:
    def test_global_bound_refuses(self):
        room = WaitingRoom(capacity=2)
        assert room.push("a", "x")
        assert room.push("b", "y")
        assert not room.push("a", "z")
        assert len(room) == 2

    def test_per_tenant_bound_refuses_independently(self):
        room = WaitingRoom(capacity=10, per_tenant_capacity=1)
        assert room.push("a", "x1")
        assert not room.push("a", "x2")
        assert room.push("b", "y1")

    def test_drr_interleaves_backlogged_tenants(self):
        room = WaitingRoom(capacity=100, quantum=1.0)
        for i in range(3):
            room.push("a", f"a{i}", cost=1.0)
            room.push("b", f"b{i}", cost=1.0)
        picked = [room.pick() for _ in range(6)]
        assert picked == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_drr_serves_cost_proportionally(self):
        # tenant "cheap" sends cost-1 requests, "dear" sends cost-4:
        # with quantum 4, one dear request should cost as much service
        # as four cheap ones — equal *cost*, not equal request counts
        room = WaitingRoom(capacity=100, quantum=4.0)
        for i in range(8):
            room.push("cheap", f"c{i}", cost=1.0)
        for i in range(2):
            room.push("dear", f"d{i}", cost=4.0)
        picked = [room.pick() for _ in range(10)]
        # first round: cheap earns 4 → serves 4; dear earns 4 → serves 1
        assert picked[:5] == ["c0", "c1", "c2", "c3", "d0"]
        assert picked[5:] == ["c4", "c5", "c6", "c7", "d1"]

    def test_idle_tenant_forfeits_deficit(self):
        room = WaitingRoom(capacity=10, quantum=10.0)
        room.push("a", "a0", cost=1.0)
        assert room.pick() == "a0"  # deficit 9 left, then forfeited
        room.push("a", "a1", cost=1.0)
        room.push("b", "b0", cost=1.0)
        # if the deficit had been hoarded, "a" could burst ahead; both
        # tenants start the round on equal footing instead
        assert room.pick() == "a1"
        assert room.pick() == "b0"
        assert room.pick() is None

    def test_zero_cost_push_raises(self):
        room = WaitingRoom(capacity=2)
        with pytest.raises(GatewayError):
            room.push("a", "x", cost=0.0)


# ---------------------------------------------------------------------------
# Label cache
# ---------------------------------------------------------------------------


class TestLabelCache:
    def test_lru_evicts_oldest(self):
        cache = LabelCache(capacity=2)
        cache.put(0, 1, b"one")
        cache.put(0, 2, b"two")
        cache.get(0, 1, now_ms=0.0)  # touch 1 → 2 becomes LRU
        cache.put(0, 3, b"three")
        assert cache.get(0, 2, now_ms=0.0) is None
        assert cache.get(0, 1, now_ms=0.0).data == b"one"
        assert cache.metrics.evictions == 1

    def test_negative_entry_expires_on_virtual_ttl(self):
        cache = LabelCache(capacity=4, negative_ttl_ms=50.0)
        cache.put_negative(0, 1, "down", now_ms=0.0)
        entry = cache.get(0, 1, now_ms=49.0)
        assert entry is not None and entry.error == "down"
        assert cache.get(0, 1, now_ms=50.0) is None
        assert cache.metrics.expired == 1

    def test_deadline_failures_are_never_negative_cached(self):
        cache = LabelCache(capacity=4, negative_ttl_ms=50.0)
        cache.put_negative(0, 1, "deadline", now_ms=0.0)
        assert cache.get(0, 1, now_ms=1.0) is None
        assert cache.metrics.negative_stores == 0

    def test_generation_keys_isolate_versions(self):
        cache = LabelCache(capacity=8)
        cache.put(0, 1, b"old")
        cache.put(1, 1, b"new")
        assert cache.get(0, 1, now_ms=0.0).data == b"old"
        assert cache.get(1, 1, now_ms=0.0).data == b"new"

    def test_retain_generations_drops_retired(self):
        cache = LabelCache(capacity=8)
        cache.put(0, 1, b"old")
        cache.put(0, 2, b"old2")
        cache.put(1, 1, b"new")
        dropped = cache.retain_generations({1})
        assert dropped == 2
        assert cache.get(0, 1, now_ms=0.0) is None
        assert cache.get(1, 1, now_ms=0.0).data == b"new"


# ---------------------------------------------------------------------------
# Gateway stack helpers
# ---------------------------------------------------------------------------


def build_stack(
    config=None,
    num_shards=4,
    replication=2,
    use_cache=True,
    obs=None,
    graph=None,
):
    """One gateway over a 4×4 grid, everything on one virtual clock."""
    graph = graph if graph is not None else grid_graph(4, 4)
    clock = VirtualClock()
    loop = VirtualLoop(clock)
    scheme = ForbiddenSetLabeling(graph, 1.0)
    store = ShardedLabelStore.from_scheme(
        scheme, num_shards=num_shards, replication=replication, seed=5
    )
    if use_cache:
        client = CachingLabelClient(store, clock=clock, seed=7, obs=obs)
    else:
        client = None
    service = QueryService(
        store,
        stretch_bound=scheme.stretch_bound(),
        client=client,
        obs=obs,
        clock=clock,
        seed=7,
    )
    gateway = AsyncGateway(service, loop, config, obs=obs)
    return loop, service, gateway


def run_one(loop, gateway, request):
    future = gateway.submit(request)
    loop.run_until_complete(loop.create_task(_drain(gateway)))
    assert future.done()
    return future.result()


async def _drain(gateway):
    await gateway.drain()


# ---------------------------------------------------------------------------
# AsyncGateway behaviour
# ---------------------------------------------------------------------------


class TestGateway:
    def test_exact_answer_flows_through(self):
        loop, service, gateway = build_stack()
        outcome = run_one(loop, gateway, GatewayRequest("t", 0, 15))
        assert outcome.status == "exact"
        assert outcome.reason is None
        assert outcome.outcome.exact
        assert outcome.total_ms <= gateway.config.default_deadline_ms

    def test_mismatched_clocks_are_rejected(self):
        loop, service, gateway = build_stack()
        with pytest.raises(GatewayError, match="share one"):
            AsyncGateway(service, VirtualLoop())
        loop.run_until_complete(loop.create_task(_drain(gateway)))

    def test_endpoint_in_forbidden_set_raises_at_submit(self):
        loop, service, gateway = build_stack()
        with pytest.raises(QueryError):
            gateway.submit(GatewayRequest("t", 0, 5, vertex_faults=(0,)))
        loop.run_until_complete(loop.create_task(_drain(gateway)))

    def test_submit_after_close_raises(self):
        loop, service, gateway = build_stack()
        loop.run_until_complete(loop.create_task(_drain(gateway)))
        with pytest.raises(GatewayError, match="closed"):
            gateway.submit(GatewayRequest("t", 0, 5))

    def test_quota_exhaustion_sheds_explicitly(self):
        config = GatewayConfig(
            default_quota=QuotaPolicy(rate_per_ms=0.001, burst=2.0)
        )
        loop, service, gateway = build_stack(config)
        futures = [
            gateway.submit(GatewayRequest("t", 0, 15)) for _ in range(5)
        ]
        loop.run_until_complete(loop.create_task(_drain(gateway)))
        outcomes = [f.result() for f in futures]
        shed = [o for o in outcomes if o.shed]
        assert len(shed) == 3
        assert all(
            o.reason is DegradationReason.QUOTA_EXCEEDED for o in shed
        )
        assert gateway.metrics.shed_by_reason == {"quota_exceeded": 3}

    def test_full_room_sheds_overload(self):
        config = GatewayConfig(
            queue_capacity=2,
            default_quota=QuotaPolicy(rate_per_ms=100.0, burst=100.0),
        )
        loop, service, gateway = build_stack(config)
        futures = [
            gateway.submit(GatewayRequest("t", 0, 15)) for _ in range(6)
        ]
        loop.run_until_complete(loop.create_task(_drain(gateway)))
        reasons = [f.result().reason for f in futures if f.result().shed]
        assert reasons.count(DegradationReason.SHED_OVERLOAD) == len(reasons)
        assert len(reasons) >= 1
        # nothing vanished: every submit resolved exactly once
        assert gateway.metrics.completed == 6

    def test_expired_queue_deadline_sheds_not_serves(self):
        config = GatewayConfig(
            max_concurrency=1,
            default_deadline_ms=0.5,  # far below one backend query
            default_quota=QuotaPolicy(rate_per_ms=100.0, burst=100.0),
        )
        loop, service, gateway = build_stack(config, use_cache=False)
        futures = [
            gateway.submit(GatewayRequest("t", 0, 15)) for _ in range(3)
        ]
        loop.run_until_complete(loop.create_task(_drain(gateway)))
        outcomes = [f.result() for f in futures]
        late = [
            o for o in outcomes
            if o.shed and o.reason is DegradationReason.QUEUE_DEADLINE
        ]
        # the head request gets the backend; the ones behind it expire
        assert len(late) >= 1
        for o in outcomes:
            if not o.shed:
                assert o.reason is None or o.status == "degraded"

    def test_coalescing_shares_one_backend_query(self):
        config = GatewayConfig(
            default_quota=QuotaPolicy(rate_per_ms=100.0, burst=100.0),
        )
        loop, service, gateway = build_stack(config)
        futures = [
            gateway.submit(GatewayRequest("t", 0, 15, vertex_faults=(5,)))
            for _ in range(4)
        ]
        loop.run_until_complete(loop.create_task(_drain(gateway)))
        outcomes = [f.result() for f in futures]
        assert all(o.status == "exact" for o in outcomes)
        assert service.metrics.queries == 1
        assert gateway.metrics.coalesced == 3
        assert sum(o.coalesced for o in outcomes) == 3
        distances = {o.outcome.distance for o in outcomes}
        assert len(distances) == 1

    def test_coalescing_disabled_runs_every_query(self):
        config = GatewayConfig(
            coalescing=False,
            default_quota=QuotaPolicy(rate_per_ms=100.0, burst=100.0),
        )
        loop, service, gateway = build_stack(config)
        futures = [
            gateway.submit(GatewayRequest("t", 0, 15)) for _ in range(4)
        ]
        loop.run_until_complete(loop.create_task(_drain(gateway)))
        assert service.metrics.queries == 4
        assert gateway.metrics.coalesced == 0
        assert all(f.result().status == "exact" for f in futures)

    def test_tight_deadline_follower_does_not_attach(self):
        # a follower with a much tighter deadline than the in-flight
        # leader must run its own query (or shed) — never receive the
        # leader's answer after its own deadline (a silent timeout)
        config = GatewayConfig(
            default_quota=QuotaPolicy(rate_per_ms=100.0, burst=100.0),
            default_deadline_ms=250.0,
        )
        loop, service, gateway = build_stack(config)
        slow = gateway.submit(GatewayRequest("t", 0, 15))
        fast = gateway.submit(GatewayRequest("t", 0, 15, deadline_ms=3.0))
        loop.run_until_complete(loop.create_task(_drain(gateway)))
        fast_outcome = fast.result()
        assert slow.result().status == "exact"
        if not fast_outcome.shed:
            assert fast_outcome.total_ms <= 3.0 + (
                service.client.retry.attempt_timeout_ms * 2 + 1.0
            )

    def test_determinism_identical_runs_identical_metrics(self):
        def run():
            config = GatewayConfig(
                default_quota=QuotaPolicy(rate_per_ms=0.5, burst=10.0)
            )
            loop, service, gateway = build_stack(config)
            for i in range(20):
                gateway.submit(
                    GatewayRequest("t", i % 16, (i + 3) % 16)
                    if i % 16 != (i + 3) % 16
                    else GatewayRequest("t", 0, 15)
                )
            loop.run_until_complete(loop.create_task(_drain(gateway)))
            return (
                gateway.metrics.summary(),
                loop.steps,
                loop.now,
            )

        assert run() == run()


# ---------------------------------------------------------------------------
# Satellite (a): frontend metrics correctness
# ---------------------------------------------------------------------------


class TestFrontendMetricsAudit:
    def test_degraded_rate_safe_before_any_query(self):
        loop, service, gateway = build_stack()
        assert service.metrics.degraded_rate == 0.0
        summary = service.metrics_summary()
        assert summary["queries"] == 0
        assert summary["degraded_rate"] == 0.0
        loop.run_until_complete(loop.create_task(_drain(gateway)))

    def test_reason_counts_appear_in_summary(self):
        loop, service, gateway = build_stack(replication=1)
        for shard in range(service.store.num_shards):
            service.store.set_down(shard)
        outcome = run_one(loop, gateway, GatewayRequest("t", 0, 15))
        assert outcome.status == "degraded"
        assert outcome.reason is DegradationReason.ENDPOINT_UNAVAILABLE
        summary = service.metrics_summary()
        assert summary["reason_endpoint_unavailable"] == 1
        assert summary["degraded_rate"] == 1.0

    def test_shed_rows_join_queries_total_family(self):
        obs = Registry()
        config = GatewayConfig(
            default_quota=QuotaPolicy(rate_per_ms=0.001, burst=1.0)
        )
        loop, service, gateway = build_stack(config, obs=obs)
        for _ in range(3):
            gateway.submit(GatewayRequest("t", 0, 15))
        loop.run_until_complete(loop.create_task(_drain(gateway)))
        export = render_prometheus(obs)
        assert (
            'repro_queries_total{reason="quota_exceeded",status="shed"} 2'
            in export
        )
        # the served row lives in the same family with the same help
        assert 'repro_queries_total{reason="",status="exact"} 1' in export

    def test_shed_reasons_is_exactly_the_shed_subset(self):
        assert DegradationReason.SHED_OVERLOAD in SHED_REASONS
        assert DegradationReason.QUOTA_EXCEEDED in SHED_REASONS
        assert DegradationReason.QUEUE_DEADLINE in SHED_REASONS
        assert DegradationReason.FAULT_LABELS_UNAVAILABLE not in SHED_REASONS


# ---------------------------------------------------------------------------
# CachingLabelClient + generations
# ---------------------------------------------------------------------------


class TestCachingClient:
    def test_repeat_queries_hit_the_cache(self):
        # two queries sharing endpoint 0 but with different faults:
        # distinct coalesce keys, shared label bytes
        loop, service, gateway = build_stack()
        f1 = gateway.submit(GatewayRequest("t", 0, 15, vertex_faults=(5,)))
        f2 = gateway.submit(GatewayRequest("t", 0, 15, vertex_faults=(6,)))
        loop.run_until_complete(loop.create_task(_drain(gateway)))
        assert f1.result().status == "exact"
        assert f2.result().status == "exact"
        cache = service.client.cache
        assert cache.metrics.misses >= 3  # 0, 15, and each fault once
        assert cache.metrics.hits >= 2  # 0 and 15 reused by the second

    def test_cache_hits_skip_physical_fetches(self):
        loop, service, gateway = build_stack(GatewayConfig(coalescing=False))
        f1 = gateway.submit(GatewayRequest("t", 0, 15))
        f2 = gateway.submit(GatewayRequest("t", 0, 15))
        loop.run_until_complete(loop.create_task(_drain(gateway)))
        assert f1.result().status == "exact"
        assert f2.result().status == "exact"
        cache = service.client.cache
        assert cache.metrics.hits >= 2  # second query reuses both labels
        # hit latency is far below a physical fetch (compare backend
        # service time; total_ms would include the queue wait)
        assert (
            f2.result().outcome.latency_ms < f1.result().outcome.latency_ms
        )
        assert f2.result().outcome.attempts == 0  # zero physical fetches

    def test_negative_hit_replays_failure_explicitly(self):
        loop, service, gateway = build_stack(
            GatewayConfig(coalescing=False), replication=1
        )
        for shard in range(service.store.num_shards):
            service.store.set_down(shard)
        f1 = gateway.submit(GatewayRequest("t", 0, 15))
        f2 = gateway.submit(GatewayRequest("t", 0, 15))
        loop.run_until_complete(loop.create_task(_drain(gateway)))
        assert f1.result().status == "degraded"
        o2 = f2.result()
        assert o2.status == "degraded"
        assert o2.reason is DegradationReason.ENDPOINT_UNAVAILABLE
        if service.client.cache.metrics.negative_hits:
            missing_errors = [m.error for m in o2.outcome.missing]
            assert any("negative_cache(" in e for e in missing_errors)


# ---------------------------------------------------------------------------
# Satellite (c): resilient client under concurrent coalesced callers
# ---------------------------------------------------------------------------


class TestResilienceUnderConcurrency:
    def test_breaker_trips_once_under_coalesced_storm(self):
        # many concurrent identical queries against a dead tier: the
        # coalescer collapses them to one backend query, so the breaker
        # sees one failure episode, not one per caller (workers must
        # outnumber the callers or the tail dequeues after the window)
        loop, service, gateway = build_stack(
            GatewayConfig(max_concurrency=8), replication=1
        )
        for shard in range(service.store.num_shards):
            service.store.set_down(shard)
        futures = [
            gateway.submit(GatewayRequest("t", 0, 15)) for _ in range(6)
        ]
        loop.run_until_complete(loop.create_task(_drain(gateway)))
        outcomes = [f.result() for f in futures]
        assert all(o.status == "degraded" for o in outcomes if not o.shed)
        assert all(
            o.reason is not None for o in outcomes if o.status != "exact"
        )
        assert service.metrics.queries == 1
        assert gateway.metrics.coalesced == 5

    def test_hedged_reads_stay_deterministic_under_concurrency(self):
        def run():
            loop, service, gateway = build_stack(
                GatewayConfig(coalescing=False), replication=2
            )
            service.store.set_slow(0, 40.0)  # hedges fire to the replica
            futures = [
                gateway.submit(GatewayRequest("t", i, 15 - i))
                for i in range(6)
                if i != 15 - i
            ]
            loop.run_until_complete(loop.create_task(_drain(gateway)))
            snap = service.client.metrics.snapshot()
            return (
                [f.result().status for f in futures],
                snap["hedges"],
                snap["fetches"],
                loop.steps,
            )

        first, second = run(), run()
        assert first == second
        assert all(status == "exact" for status in first[0])

    def test_breaker_transitions_are_observable_mid_traffic(self):
        loop, service, gateway = build_stack(
            GatewayConfig(
                coalescing=False,
                default_quota=QuotaPolicy(rate_per_ms=100.0, burst=100.0),
            ),
            replication=1,
        )
        store = service.store
        client = service.client
        shard_of_0 = store.replicas(0)[0]
        for shard in range(store.num_shards):
            store.set_down(shard)
        for _ in range(3):
            f = gateway.submit(GatewayRequest("t", 0, 15))
            loop.run_until_complete(f)
        assert client.breaker(shard_of_0).trips >= 1
        assert client.breaker(shard_of_0).state(loop.now) == "open"
        store.recover_all()
        loop.clock.advance(2 * client.breaker_policy.cooldown_ms)
        outcome = run_one(loop, gateway, GatewayRequest("t", 0, 15))
        assert outcome.status == "exact"
