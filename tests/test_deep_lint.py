"""Tests for the whole-program (``--deep``) lint pass.

Covers: every interprocedural rule firing on a bad fixture and
staying silent on the matching good fixture, call-graph construction
(mutual recursion, cycles, method resolution through annotations and
constructor assignments), the deterministic worklist engine, the fact
cache, ``--select`` prefix expansion, the SARIF reporter, the CLI
flags, and the meta-test that the repo's own tree deep-lints clean.
"""

import json
import subprocess
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    FactCache,
    build_program,
    deep_lint_paths,
    deep_rule_ids,
    expand_select,
    fixpoint,
    render_json,
    render_sarif,
)
from repro.lint.deep import deep_check_sources
from repro.lint.engine import SourceFile

ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

#: rule id -> (fixture stem, logical path the snippet is linted *as*).
DEEP_CASES = {
    "RPL010": ("rpl010", "src/repro/service/loader_fixture.py"),
    "RPL011": ("rpl011", "src/repro/gateway/gateway_fixture.py"),
    "RPL012": ("rpl012", "src/repro/rollout/digest_fixture.py"),
    "RPL013": ("rpl013", "src/repro/labeling/hotpath_fixture.py"),
}


def _check_fixture(rule_id, kind):
    stem, logical = DEEP_CASES[rule_id]
    path = FIXTURES / f"{stem}_{kind}.py"
    source = SourceFile(
        path.read_text(encoding="utf-8"), path=str(path), logical=logical
    )
    return deep_check_sources([source], select=[rule_id])


# -- per-rule fixtures -------------------------------------------------------


@pytest.mark.parametrize("rule_id", sorted(DEEP_CASES))
def test_deep_bad_fixture_fires(rule_id):
    findings = _check_fixture(rule_id, "bad")
    assert findings, f"{rule_id} bad fixture produced no findings"
    assert {f.rule for f in findings} == {rule_id}, [f.render() for f in findings]


@pytest.mark.parametrize("rule_id", sorted(DEEP_CASES))
def test_deep_good_fixture_is_clean(rule_id):
    findings = _check_fixture(rule_id, "good")
    assert findings == [], [f.render() for f in findings]


def test_corruption_flow_and_race_rules_are_errors():
    for rule_id in ("RPL010", "RPL011", "RPL012"):
        for finding in _check_fixture(rule_id, "bad"):
            assert finding.severity == "error"


def test_hot_path_audit_is_advisory():
    findings = _check_fixture("RPL013", "bad")
    assert findings and all(f.severity == "info" for f in findings)
    # the advisory tier reports a call depth for prioritisation
    assert any("depth" in f.message for f in findings)


def test_advisory_findings_do_not_fail_the_result():
    result = deep_lint_paths([FIXTURES / "rpl013_bad.py"])
    assert result.findings
    assert result.ok, "info-severity findings must not flip ok to False"


def test_justified_suppression_silences_deep_finding():
    stem, logical = DEEP_CASES["RPL012"]
    text = (FIXTURES / f"{stem}_bad.py").read_text(encoding="utf-8")
    text = text.replace(
        "    return zlib.crc32(payload)",
        "    # repro-lint: disable=RPL012 -- fixture exercising deep suppression\n"
        "    return zlib.crc32(payload)",
    )
    source = SourceFile(text, path="rpl012_suppressed.py", logical=logical)
    assert deep_check_sources([source], select=["RPL012"]) == []


# -- call-graph construction -------------------------------------------------

MOD = '''"""Doc."""


class Store:
    def load(self) -> int:
        return 1


class Service:
    def __init__(self, store: Store) -> None:
        self._store = store

    def run(self) -> int:
        return self._store.load()


class Built:
    def __init__(self) -> None:
        self._store = Store()

    def peek(self) -> int:
        return self._store.load()


def even(n: int) -> bool:
    if n == 0:
        return True
    return odd(n - 1)


def odd(n: int) -> bool:
    if n == 0:
        return False
    return even(n - 1)


def loop(n: int) -> int:
    if n == 0:
        return 0
    return loop(n - 1)
'''


def _program():
    return build_program(
        [SourceFile(MOD, path="mod.py", logical="src/repro/x/mod.py")]
    )


def _callees(program, qualname):
    return [callee for _, callee in program.callees_of(qualname)]


def test_callgraph_resolves_mutual_recursion():
    program = _program()
    assert _callees(program, "repro.x.mod.even") == ["repro.x.mod.odd"]
    assert _callees(program, "repro.x.mod.odd") == ["repro.x.mod.even"]
    assert program.callers["repro.x.mod.even"] == ["repro.x.mod.odd"]


def test_callgraph_handles_self_cycle():
    program = _program()
    assert _callees(program, "repro.x.mod.loop") == ["repro.x.mod.loop"]


def test_callgraph_resolves_method_via_annotated_attribute():
    program = _program()
    assert _callees(program, "repro.x.mod.Service.run") == [
        "repro.x.mod.Store.load"
    ]


def test_callgraph_resolves_method_via_constructor_assignment():
    program = _program()
    assert _callees(program, "repro.x.mod.Built.peek") == [
        "repro.x.mod.Store.load"
    ]


def test_callgraph_links_across_modules():
    helper = '"""Doc."""\n\n\ndef leaf() -> int:\n    return 1\n'
    caller = (
        '"""Doc."""\n\nfrom repro.x.helper import leaf\n\n\n'
        "def top() -> int:\n    return leaf()\n"
    )
    program = build_program(
        [
            SourceFile(helper, path="helper.py", logical="src/repro/x/helper.py"),
            SourceFile(caller, path="caller.py", logical="src/repro/x/caller.py"),
        ]
    )
    assert _callees(program, "repro.x.caller.top") == ["repro.x.helper.leaf"]


# -- worklist engine ---------------------------------------------------------


def test_fixpoint_propagates_through_cycles():
    qualnames = ["a", "b", "c"]
    callees = {"a": ["b"], "b": ["c"], "c": ["a"]}
    callers = {"b": ["a"], "c": ["b"], "a": ["c"]}

    def init(q):
        return frozenset({"X"}) if q == "c" else frozenset()

    def transfer(q, summaries):
        out = set(summaries[q])
        for callee in callees.get(q, ()):
            out |= summaries[callee]
        return frozenset(out)

    result = fixpoint(qualnames, callers, init, transfer)
    assert result == {q: frozenset({"X"}) for q in qualnames}


def test_fixpoint_is_deterministic():
    qualnames = [f"f{i}" for i in range(20)]
    callers = {q: [p for p in qualnames if p != q] for q in qualnames}

    def init(q):
        return frozenset({q}) if q == "f7" else frozenset()

    def transfer(q, summaries):
        merged = set()
        for value in summaries.values():
            merged |= value
        return frozenset(merged)

    first = fixpoint(qualnames, callers, init, transfer)
    second = fixpoint(qualnames, callers, init, transfer)
    assert first == second


def test_fixpoint_rejects_non_monotone_transfer():
    def transfer(q, summaries):
        return not summaries[q]  # flip-flops forever

    with pytest.raises(RuntimeError, match="did not converge"):
        fixpoint(["a"], {"a": ["a"]}, lambda q: False, transfer, max_rounds=50)


# -- fact cache --------------------------------------------------------------


def test_fact_cache_round_trip(tmp_path):
    cache_path = tmp_path / "cache.json"
    first = FactCache(cache_path)
    assert first.get("text") is None
    first.put("text", {"module": "m"})
    first.save()

    second = FactCache(cache_path)
    assert second.get("text") == {"module": "m"}
    assert (second.hits, second.misses) == (1, 0)


def test_fact_cache_prunes_untouched_entries(tmp_path):
    cache_path = tmp_path / "cache.json"
    cache = FactCache(cache_path)
    cache.put("keep", {"module": "keep"})
    cache.put("drop", {"module": "drop"})
    cache.save()

    pruned = FactCache(cache_path)
    assert pruned.get("keep") == {"module": "keep"}
    pruned.save()

    reloaded = FactCache(cache_path)
    assert reloaded.get("keep") == {"module": "keep"}
    assert reloaded.get("drop") is None


def test_fact_cache_tolerates_corrupt_file(tmp_path):
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json", encoding="utf-8")
    cache = FactCache(cache_path)
    assert cache.get("text") is None


def test_deep_lint_warm_cache_hits_every_file(tmp_path):
    cache_path = tmp_path / "cache.json"
    deep_lint_paths([FIXTURES / "rpl010_bad.py"], cache_path=cache_path)
    warm = FactCache(cache_path)
    text = (FIXTURES / "rpl010_bad.py").read_text(encoding="utf-8")
    assert warm.get(text) is not None


def test_cached_and_uncached_runs_agree(tmp_path):
    cache_path = tmp_path / "cache.json"
    cold = deep_lint_paths([FIXTURES], cache_path=cache_path)
    warm = deep_lint_paths([FIXTURES], cache_path=cache_path)
    uncached = deep_lint_paths([FIXTURES])
    assert render_json(cold) == render_json(warm) == render_json(uncached)


# -- select expansion --------------------------------------------------------


def test_expand_select_prefix_wildcard():
    known = {"RPL010", "RPL011", "RPL012", "RPL013"}
    assert expand_select(["RPL01x"], known) == known
    assert expand_select(["RPL010"], known) == {"RPL010"}


def test_expand_select_rejects_unknown_ids():
    with pytest.raises(ValueError, match="unknown rule ids"):
        expand_select(["RPL999"], {"RPL010"})
    with pytest.raises(ValueError, match="unknown rule ids"):
        expand_select(["RPL99x"], {"RPL010"})


def test_deep_rule_ids_catalogue():
    assert deep_rule_ids() == ["RPL010", "RPL011", "RPL012", "RPL013"]


# -- reporters ---------------------------------------------------------------


def test_sarif_reporter_schema():
    result = deep_lint_paths([FIXTURES / "rpl010_bad.py"])
    doc = json.loads(render_sarif(result))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
    assert "RPL010" in rules
    assert run["results"], "expected at least one SARIF result"
    for entry in run["results"]:
        assert entry["ruleId"] == "RPL010"
        assert entry["level"] == "error"
        location = entry["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("rpl010_bad.py")
        assert location["region"]["startLine"] >= 1


def test_sarif_maps_info_severity_to_note():
    result = deep_lint_paths([FIXTURES / "rpl013_bad.py"])
    doc = json.loads(render_sarif(result))
    levels = {entry["level"] for entry in doc["runs"][0]["results"]}
    assert levels == {"note"}


def test_deep_reports_are_bit_deterministic():
    first = deep_lint_paths([FIXTURES])
    second = deep_lint_paths([FIXTURES])
    assert render_json(first).encode() == render_json(second).encode()
    assert render_sarif(first).encode() == render_sarif(second).encode()


# -- the repo's own tree -----------------------------------------------------


def test_repo_tree_deep_lints_clean():
    result = deep_lint_paths([ROOT / "src" / "repro", ROOT / "tools"])
    assert result.ok, "\n".join(f.render() for f in result.findings)
    # only the advisory hot-path work-list may remain
    assert {f.rule for f in result.findings} <= {"RPL013"}


def test_scenario_package_deep_lints_clean():
    result = deep_lint_paths([ROOT / "src" / "repro" / "scenario"])
    assert result.ok, "\n".join(f.render() for f in result.findings)
    assert result.files_scanned >= 5
    assert {f.rule for f in result.findings} <= {"RPL013"}


def test_kernel_package_is_allocation_free_on_the_hot_path():
    """The array kernel retires its own RPL013 work-list: zero findings.

    ``DecodeEngine.run`` is an RPL013 entry point; everything reachable
    from it must allocate no per-query dict/set machinery.
    """
    result = deep_lint_paths(
        [ROOT / "src" / "repro" / "labeling" / "kernel"]
    )
    rpl013 = [f for f in result.findings if f.rule == "RPL013"]
    assert rpl013 == [], "\n".join(f.render() for f in rpl013)


# -- CLI ---------------------------------------------------------------------


def test_cli_deep_fires_on_fixture(capsys):
    code = cli_main(["lint", "--deep", str(FIXTURES / "rpl010_bad.py")])
    assert code == 1
    assert "RPL010" in capsys.readouterr().out


def test_cli_deep_select_prefix(capsys):
    code = cli_main(
        [
            "lint",
            "--deep",
            "--select",
            "RPL01x",
            str(FIXTURES / "rpl012_bad.py"),
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "RPL012" in out


def test_cli_deep_rule_without_flag_errors(capsys):
    code = cli_main(["lint", "--select", "RPL011", str(FIXTURES)])
    assert code == 1
    assert "--deep" in capsys.readouterr().err


def test_cli_unknown_prefix_errors(capsys):
    code = cli_main(["lint", "--select", "RPL99x", str(FIXTURES)])
    assert code == 1
    assert "unknown rule ids" in capsys.readouterr().err


def test_cli_sarif_output_parses(capsys):
    code = cli_main(
        ["lint", "--deep", "--format", "sarif", str(FIXTURES / "rpl011_bad.py")]
    )
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"


def test_cli_deep_cache_file_is_written(tmp_path, capsys):
    cache_path = tmp_path / "cache.json"
    code = cli_main(
        [
            "lint",
            "--deep",
            "--cache",
            str(cache_path),
            str(FIXTURES / "rpl010_good.py"),
        ]
    )
    capsys.readouterr()
    assert code == 0
    assert cache_path.exists()


def test_cli_list_rules_includes_deep_tier(capsys):
    code = cli_main(["lint", "--list-rules"])
    assert code == 0
    out = capsys.readouterr().out
    for rule_id in sorted(DEEP_CASES):
        assert rule_id in out
    assert "--deep" in out


def test_cli_changed_only_restricts_report(tmp_path, monkeypatch, capsys):
    """--changed-only trims the report to files changed since REF."""
    repo = tmp_path / "repo"
    repo.mkdir()
    monkeypatch.chdir(repo)
    env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t"}

    def git(*argv):
        subprocess.run(
            ["git", "-c", "user.name=t", "-c", "user.email=t@t", *argv],
            check=True,
            capture_output=True,
            env={**__import__("os").environ, **env},
        )

    git("init", "-q")
    (repo / "stable.py").write_text('"""Doc."""\nimport random\n', encoding="utf-8")
    (repo / "touched.py").write_text('"""Doc."""\nX = 1\n', encoding="utf-8")
    git("add", ".")
    git("commit", "-qm", "seed")
    (repo / "touched.py").write_text(
        '"""Doc."""\nimport random\n', encoding="utf-8"
    )

    code = cli_main(["lint", "--changed-only", "HEAD", "."])
    out = capsys.readouterr().out
    assert code == 1
    assert "touched.py" in out
    assert "stable.py" not in out

    code = cli_main(["lint", "--changed-only", "HEAD", "--select", "RPL002", "."])
    capsys.readouterr()
    assert code == 0


def test_cli_changed_only_bad_ref_errors(capsys):
    code = cli_main(
        ["lint", "--changed-only", "no-such-ref-xyz", str(FIXTURES)]
    )
    assert code == 1
    assert "--changed-only" in capsys.readouterr().err
