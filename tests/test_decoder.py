"""Tests for the sketch-graph decoder (the 'Distance Queries' paragraph).

The pivotal properties:

* **soundness** (Lemma 2.3): every sketch edge corresponds to a
  fault-free path of exactly its weight, so the decoded distance never
  undershoots ``d_{G\\F}``;
* **stretch** (Lemma 2.4): the decoded distance never exceeds
  ``(1+ε)·d_{G\\F}``;
* **connectivity exactness**: ``δ < ∞`` iff ``s`` and ``t`` are
  connected in ``G \\ F``.
"""

import math
import random

import pytest

from repro.baselines import ExactRecomputeOracle
from repro.exceptions import QueryError
from repro.graphs import Graph
from repro.graphs.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
    road_like_graph,
    star_graph,
)
from repro.labeling import (
    FaultSet,
    ForbiddenSetLabeling,
    LabelingOptions,
    build_sketch_graph,
    decode_distance,
)


def check_random_queries(
    graph,
    scheme,
    num_queries,
    max_vertex_faults,
    max_edge_faults=0,
    seed=0,
):
    """Shared harness: sandwich d_true <= d_hat <= (1+eps) d_true."""
    exact = ExactRecomputeOracle(graph)
    rng = random.Random(seed)
    n = graph.num_vertices
    edges = list(graph.edges())
    bound = scheme.stretch_bound()
    for _ in range(num_queries):
        s, t = rng.sample(range(n), 2)
        vf = [
            v
            for v in rng.sample(range(n), min(n - 2, rng.randint(0, max_vertex_faults)))
            if v not in (s, t)
        ]
        ef = rng.sample(edges, rng.randint(0, max_edge_faults)) if max_edge_faults else []
        d_true = exact.query(s, t, vertex_faults=vf, edge_faults=ef)
        d_hat = scheme.query(s, t, vertex_faults=vf, edge_faults=ef).distance
        if math.isinf(d_true):
            assert math.isinf(d_hat), (s, t, vf, ef)
        else:
            assert d_true <= d_hat <= bound * d_true + 1e-9, (s, t, vf, ef, d_true, d_hat)


class TestBasicQueries:
    def test_identity_query(self):
        scheme = ForbiddenSetLabeling(path_graph(8), epsilon=1.0)
        result = scheme.query(2, 2)
        assert result.distance == 0 and result.path == (2,)

    def test_no_fault_distance_exact_on_path(self):
        scheme = ForbiddenSetLabeling(path_graph(32), epsilon=1.0)
        assert scheme.query(0, 31).distance >= 31

    def test_endpoint_in_fault_set_rejected(self):
        scheme = ForbiddenSetLabeling(path_graph(8), epsilon=1.0)
        with pytest.raises(QueryError):
            scheme.query(0, 3, vertex_faults=[3])
        with pytest.raises(QueryError):
            scheme.query(3, 0, vertex_faults=[3])

    def test_identity_query_with_endpoint_fault_rejected(self):
        scheme = ForbiddenSetLabeling(path_graph(8), epsilon=1.0)
        with pytest.raises(QueryError):
            scheme.query(3, 3, vertex_faults=[3])

    def test_nonexistent_forbidden_edge_rejected(self):
        scheme = ForbiddenSetLabeling(path_graph(8), epsilon=1.0)
        with pytest.raises(QueryError):
            scheme.query(0, 3, edge_faults=[(0, 5)])

    def test_mismatched_labels_rejected(self):
        a = ForbiddenSetLabeling(path_graph(64), epsilon=1.0)
        b = ForbiddenSetLabeling(path_graph(64), epsilon=0.25)
        with pytest.raises(QueryError):
            decode_distance(a.label(0), b.label(5))

    def test_cut_vertex_disconnects(self):
        scheme = ForbiddenSetLabeling(path_graph(16), epsilon=1.0)
        result = scheme.query(0, 15, vertex_faults=[8])
        assert math.isinf(result.distance)
        assert result.path == ()

    def test_cut_edge_disconnects(self):
        scheme = ForbiddenSetLabeling(path_graph(16), epsilon=1.0)
        assert math.isinf(scheme.query(0, 15, edge_faults=[(7, 8)]).distance)

    def test_cycle_reroutes_around_fault(self):
        scheme = ForbiddenSetLabeling(cycle_graph(32), epsilon=1.0)
        exact = ExactRecomputeOracle(cycle_graph(32))
        d_true = exact.query(0, 4, vertex_faults=[2])
        d_hat = scheme.query(0, 4, vertex_faults=[2]).distance
        assert d_true == 28
        assert 28 <= d_hat <= 2 * 28

    def test_star_center_fault_disconnects_leaves(self):
        scheme = ForbiddenSetLabeling(star_graph(6), epsilon=1.0)
        assert math.isinf(scheme.query(1, 2, vertex_faults=[0]).distance)

    def test_result_path_endpoints(self):
        scheme = ForbiddenSetLabeling(grid_graph(6, 6), epsilon=1.0)
        result = scheme.query(0, 35, vertex_faults=[7])
        assert result.path[0] == 0 and result.path[-1] == 35

    def test_result_sketch_sizes_positive(self):
        scheme = ForbiddenSetLabeling(grid_graph(5, 5), epsilon=1.0)
        result = scheme.query(0, 24)
        assert result.sketch_vertices > 0 and result.sketch_edges > 0


class TestSoundness:
    """The decoded distance never undershoots (Lemma 2.3)."""

    def test_sketch_edges_avoid_faults(self):
        g = grid_graph(7, 7)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        exact = ExactRecomputeOracle(g)
        faults = [24, 10, 38]
        fs = scheme.fault_set(vertex_faults=faults)
        adjacency = build_sketch_graph(scheme.label(0), scheme.label(48), fs)
        for x, nbrs in adjacency.items():
            for y, weight in nbrs:
                # the weight must be realizable in G \ F
                d_gf = exact.query(x, y, vertex_faults=faults)
                assert d_gf <= weight, (x, y, weight, d_gf)

    def test_sketch_edge_weights_match_g_distance(self):
        from repro.graphs import bfs_distances

        g = grid_graph(7, 7)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        fs = scheme.fault_set(vertex_faults=[24])
        adjacency = build_sketch_graph(scheme.label(0), scheme.label(48), fs)
        for x, nbrs in adjacency.items():
            truth = bfs_distances(g, x)
            for y, weight in nbrs:
                assert truth[y] == weight

    def test_faulty_vertices_isolated_in_sketch(self):
        g = grid_graph(7, 7)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        fs = scheme.fault_set(vertex_faults=[24, 25])
        adjacency = build_sketch_graph(scheme.label(0), scheme.label(48), fs)
        assert adjacency.get(24, []) == []
        assert adjacency.get(25, []) == []
        for nbrs in adjacency.values():
            assert all(y not in (24, 25) for y, _ in nbrs)

    def test_forbidden_edge_not_in_sketch(self):
        g = cycle_graph(16)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        fs = scheme.fault_set(edge_faults=[(3, 4)])
        adjacency = build_sketch_graph(scheme.label(0), scheme.label(8), fs)
        assert all(y != 4 or w > 1 for y, w in adjacency.get(3, []))


class TestStretchRandomized:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 4.0])
    def test_grid_vertex_faults(self, epsilon):
        g = grid_graph(9, 9)
        scheme = ForbiddenSetLabeling(g, epsilon=epsilon)
        check_random_queries(g, scheme, 40, max_vertex_faults=5, seed=1)

    def test_grid_mixed_faults(self):
        g = grid_graph(8, 8)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        check_random_queries(
            g, scheme, 40, max_vertex_faults=3, max_edge_faults=3, seed=2
        )

    def test_cycle_edge_faults(self):
        g = cycle_graph(48)
        scheme = ForbiddenSetLabeling(g, epsilon=0.5)
        check_random_queries(
            g, scheme, 40, max_vertex_faults=0, max_edge_faults=2, seed=3
        )

    def test_tree_vertex_faults(self):
        g = random_tree(70, seed=4)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        check_random_queries(g, scheme, 40, max_vertex_faults=4, seed=4)

    def test_road_like_mixed_faults(self):
        g = road_like_graph(8, 8, removal_fraction=0.1, seed=5)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        check_random_queries(
            g, scheme, 40, max_vertex_faults=4, max_edge_faults=2, seed=5
        )

    def test_unit_mode_same_guarantees(self):
        g = grid_graph(9, 9)
        scheme = ForbiddenSetLabeling(
            g, epsilon=1.0, options=LabelingOptions(low_level="unit")
        )
        check_random_queries(
            g, scheme, 40, max_vertex_faults=5, max_edge_faults=2, seed=6
        )

    def test_disconnected_graph_components(self):
        g = Graph(8)
        g.add_edges([(0, 1), (1, 2), (3, 4), (4, 5), (5, 6), (6, 7)])
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        assert math.isinf(scheme.query(0, 7).distance)
        assert scheme.query(3, 7).distance == 4


class TestAdversarialFaults:
    """Faults placed exactly on the shortest path, forcing detours."""

    def test_shortest_path_blocked_on_grid(self):
        from repro.graphs import shortest_path

        g = grid_graph(9, 9)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        exact = ExactRecomputeOracle(g)
        s, t = 0, 80
        path = shortest_path(g, s, t)
        faults = path[len(path) // 2 : len(path) // 2 + 2]  # block the middle
        d_true = exact.query(s, t, vertex_faults=faults)
        d_hat = scheme.query(s, t, vertex_faults=faults).distance
        assert d_true <= d_hat <= 2 * d_true

    def test_repeated_blocking(self):
        """Iteratively forbid the returned path; distances must not shrink."""
        g = grid_graph(8, 8)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        exact = ExactRecomputeOracle(g)
        s, t = 0, 63
        faults: list[int] = []
        previous = 0
        for _ in range(4):
            d_true = exact.query(s, t, vertex_faults=faults)
            if math.isinf(d_true):
                break
            result = scheme.query(s, t, vertex_faults=faults)
            assert d_true <= result.distance <= 2 * d_true
            assert result.distance >= previous
            previous = d_true
            # forbid an interior vertex of the realized route
            interior = [v for v in result.path if v not in (s, t)]
            if not interior:
                break
            faults.append(interior[len(interior) // 2])

    def test_wall_of_faults(self):
        """A full column of faults in a grid forces inf."""
        g = grid_graph(6, 6)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        wall = [6 * 2 + y for y in range(6)]  # column x=2
        result = scheme.query(0, 35, vertex_faults=wall)
        assert math.isinf(result.distance)

    def test_wall_with_one_gap(self):
        g = grid_graph(6, 6)
        scheme = ForbiddenSetLabeling(g, epsilon=1.0)
        exact = ExactRecomputeOracle(g)
        wall = [6 * 2 + y for y in range(5)]  # gap at (2, 5)
        d_true = exact.query(0, 35, vertex_faults=wall)
        d_hat = scheme.query(0, 35, vertex_faults=wall).distance
        assert not math.isinf(d_true)
        assert d_true <= d_hat <= 2 * d_true


class TestNormalizeFaults:
    def test_dedup_preserves_first_seen_order(self):
        from repro.labeling import normalize_faults

        vertices, edges = normalize_faults(
            [4, 2, 4, 7, 2], [(3, 1), (1, 3), (9, 5)]
        )
        assert vertices == (4, 2, 7)
        assert edges == ((1, 3), (5, 9))

    def test_empty_inputs(self):
        from repro.labeling import normalize_faults

        assert normalize_faults((), ()) == ((), ())

    def test_self_loop_rejected(self):
        from repro.exceptions import QueryError
        from repro.labeling import normalize_faults

        with pytest.raises(QueryError):
            normalize_faults((), [(2, 2)])
