"""Tests for the parameter schedule (Section 2.1, Claim 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import LabelingError
from repro.labeling.params import ParamSchedule, c_for_epsilon


class TestCForEpsilon:
    def test_paper_formula(self):
        # c = max(ceil(log2(6/eps)), 2)
        assert c_for_epsilon(6.0) == 2  # log2(1) = 0 -> floor at 2
        assert c_for_epsilon(3.0) == 2  # log2(2) = 1 -> floor at 2
        assert c_for_epsilon(1.5) == 2
        assert c_for_epsilon(1.0) == 3
        assert c_for_epsilon(0.5) == 4
        assert c_for_epsilon(0.1) == 6

    def test_nonpositive_rejected(self):
        with pytest.raises(LabelingError):
            c_for_epsilon(0)
        with pytest.raises(LabelingError):
            c_for_epsilon(-1)


class TestSchedule:
    def test_paper_values(self):
        sched = ParamSchedule.for_graph(epsilon=1.0, num_vertices=256)
        c = sched.c
        for i in sched.levels():
            assert sched.rho(i) == 2 ** (i - c)
            assert sched.lam(i) == 2 ** (i + 1)
            assert sched.mu(i) == sched.rho(i) + sched.lam(i)
            assert sched.r(i) == sched.mu(i + 1) + 2**i + sched.rho(i + 1)

    def test_levels_range(self):
        sched = ParamSchedule.for_graph(epsilon=1.0, num_vertices=1024)
        assert sched.levels() == range(sched.c + 1, 11)

    def test_tiny_graph_levels_never_empty(self):
        # paper assumes log n > c; we extend top_level so I stays non-empty
        sched = ParamSchedule.for_graph(epsilon=0.1, num_vertices=4)
        assert len(sched.levels()) >= 2

    def test_net_level_offset(self):
        sched = ParamSchedule.for_graph(epsilon=1.0, num_vertices=128)
        i = sched.c + 1
        assert sched.net_level(i) == 0  # lowest level uses N_0 = V(G)

    def test_net_level_out_of_range(self):
        sched = ParamSchedule.for_graph(epsilon=1.0, num_vertices=128)
        with pytest.raises(LabelingError):
            sched.net_level(sched.c)  # below I

    def test_validate_passes(self):
        ParamSchedule.for_graph(epsilon=0.25, num_vertices=4096).validate()

    def test_stretch_bound_never_exceeds_eps(self):
        for eps in (0.1, 0.5, 1.0, 2.0, 10.0):
            sched = ParamSchedule.for_graph(eps, 512)
            assert sched.stretch_bound() <= 1 + eps + 1e-12

    def test_empty_graph_rejected(self):
        with pytest.raises(LabelingError):
            ParamSchedule.for_graph(1.0, 0)


@given(
    st.floats(min_value=0.01, max_value=16.0, allow_nan=False),
    st.integers(min_value=1, max_value=10**6),
)
def test_claim_1a_property(epsilon, n):
    """Claim 1(a): lam_i >= rho_i + rho_{i+1} + 2^i for every level."""
    sched = ParamSchedule.for_graph(epsilon, n)
    sched.validate()
    for i in sched.levels():
        assert sched.lam(i) >= sched.rho(i) + sched.rho(i + 1) + 2**i
        # Lemma 2.5: r_i < 2^{i+3}
        assert sched.r(i) < 2 ** (i + 3)
        # protected balls are strictly inside the label ball
        assert sched.lam(i) < sched.r(i)
