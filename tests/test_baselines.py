"""Tests for the baseline oracles."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    ApspOracle,
    ExactRecomputeOracle,
    SingleFaultOracle,
    TreeForbiddenSetLabeling,
)
from repro.exceptions import GraphError, QueryError
from repro.graphs import Graph, bfs_distances
from repro.graphs.generators import (
    balanced_tree,
    cycle_graph,
    grid_graph,
    path_graph,
    random_tree,
)


class TestExactRecompute:
    def test_matches_bfs(self):
        g = grid_graph(5, 5)
        oracle = ExactRecomputeOracle(g)
        truth = bfs_distances(g, 0)
        for t in range(1, 25):
            assert oracle.query(0, t) == truth[t]

    def test_endpoint_fault_rejected(self):
        oracle = ExactRecomputeOracle(path_graph(5))
        with pytest.raises(QueryError):
            oracle.query(0, 2, vertex_faults=[0])

    def test_connectivity(self):
        oracle = ExactRecomputeOracle(path_graph(5))
        assert oracle.connectivity(0, 4)
        assert not oracle.connectivity(0, 4, vertex_faults=[2])


class TestApsp:
    def test_matches_exact(self):
        g = cycle_graph(14)
        apsp = ApspOracle(g)
        exact = ExactRecomputeOracle(g)
        for s in range(14):
            for t in range(14):
                assert apsp.query(s, t) == exact.query(s, t)

    def test_disconnected_inf(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert math.isinf(ApspOracle(g).query(0, 2))

    def test_size(self):
        assert ApspOracle(path_graph(6)).size_entries() == 36

    def test_out_of_range(self):
        with pytest.raises(QueryError):
            ApspOracle(path_graph(3)).query(0, 5)


class TestSingleFault:
    def test_vertex_fault_matches_exact(self):
        g = grid_graph(5, 5)
        oracle = SingleFaultOracle(g)
        exact = ExactRecomputeOracle(g)
        for s, t, f in [(0, 24, 12), (0, 4, 2), (20, 4, 13), (0, 24, 1)]:
            assert oracle.query_vertex_fault(s, t, f) == exact.query(
                s, t, vertex_faults=[f]
            )

    def test_edge_fault_matches_exact(self):
        g = cycle_graph(12)
        oracle = SingleFaultOracle(g)
        exact = ExactRecomputeOracle(g)
        for s, t, e in [(0, 6, (2, 3)), (0, 6, (8, 9)), (1, 2, (1, 2))]:
            assert oracle.query_edge_fault(s, t, e) == exact.query(
                s, t, edge_faults=[e]
            )

    def test_fast_path_taken_for_irrelevant_fault(self):
        g = path_graph(10)
        oracle = SingleFaultOracle(g)
        oracle.query_vertex_fault(0, 3, 8)  # fault beyond the target
        assert oracle.fast_path_hits == 1 and oracle.slow_path_hits == 0

    def test_slow_path_taken_for_on_path_fault(self):
        g = cycle_graph(10)
        oracle = SingleFaultOracle(g)
        oracle.query_vertex_fault(0, 4, 2)
        assert oracle.slow_path_hits == 1

    def test_endpoint_fault_rejected(self):
        oracle = SingleFaultOracle(path_graph(5))
        with pytest.raises(QueryError):
            oracle.query_vertex_fault(0, 2, 2)

    def test_missing_edge_rejected(self):
        oracle = SingleFaultOracle(path_graph(5))
        with pytest.raises(QueryError):
            oracle.query_edge_fault(0, 2, (0, 3))


class TestTreeLabeling:
    def test_non_tree_rejected(self):
        with pytest.raises(GraphError):
            TreeForbiddenSetLabeling(cycle_graph(5))
        disconnected = Graph(4)
        disconnected.add_edge(0, 1)
        with pytest.raises(GraphError):
            TreeForbiddenSetLabeling(disconnected)

    def test_distances_exact_failure_free(self):
        g = balanced_tree(2, 4)
        scheme = TreeForbiddenSetLabeling(g)
        exact = ExactRecomputeOracle(g)
        for s in range(0, g.num_vertices, 3):
            for t in range(g.num_vertices):
                assert scheme.query(s, t) == exact.query(s, t)

    def test_fault_on_path_disconnects(self):
        g = path_graph(10)  # a path is a tree
        scheme = TreeForbiddenSetLabeling(g)
        assert math.isinf(scheme.query(0, 9, vertex_faults=[5]))
        assert scheme.query(0, 4, vertex_faults=[5]) == 4

    def test_edge_fault(self):
        g = balanced_tree(2, 3)
        scheme = TreeForbiddenSetLabeling(g)
        # removing the root-child edge on the s-t path disconnects
        assert math.isinf(scheme.query(1, 2, edge_faults=[(0, 1)]))
        assert scheme.query(1, 2, edge_faults=[(1, 3)]) == 2

    def test_endpoint_fault_rejected(self):
        scheme = TreeForbiddenSetLabeling(path_graph(4))
        with pytest.raises(QueryError):
            scheme.query(0, 2, vertex_faults=[2])

    def test_label_sizes(self):
        scheme = TreeForbiddenSetLabeling(path_graph(8))
        assert scheme.max_label_entries() == 8  # deepest root path

    @settings(max_examples=20, deadline=None)
    @given(st.integers(3, 50), st.integers(0, 10**6))
    def test_matches_exact_on_random_trees(self, n, seed):
        g = random_tree(n, seed)
        scheme = TreeForbiddenSetLabeling(g)
        exact = ExactRecomputeOracle(g)
        import random as _random

        rng = _random.Random(seed)
        for _ in range(5):
            s, t = rng.sample(range(n), 2)
            candidates = [v for v in range(n) if v not in (s, t)]
            faults = rng.sample(candidates, min(2, len(candidates)))
            assert scheme.query(s, t, vertex_faults=faults) == exact.query(
                s, t, vertex_faults=faults
            )
