"""Chaos-injection tests: hostile schedules, hostile timing, hostile bytes.

The fast smoke subset runs in the default test run; the full acceptance
battery (20 churn schedules, 1000-trial corruption fuzz) carries the
``chaos`` marker.
"""

import io

import pytest

from repro.chaos import (
    ChaosEvent,
    ChaosRunner,
    FaultPlan,
    MUTATION_KINDS,
    fuzz_database,
    mutate,
    random_churn_plan,
    run_plan,
    standard_suite,
)
from repro.exceptions import EncodingError, QueryError
from repro.graphs.generators import cycle_graph, grid_graph, path_graph
from repro.labeling import ForbiddenSetLabeling
from repro.oracle.persistence import LabelDatabase, save_labels


@pytest.fixture(scope="module")
def db_blob():
    graph = grid_graph(5, 5)
    scheme = ForbiddenSetLabeling(graph, epsilon=1.0)
    buffer = io.BytesIO()
    save_labels(scheme, buffer)
    return graph, buffer.getvalue()


PROBES = [(0, 24, ()), (0, 24, (12,)), (4, 20, (10, 14)), (2, 22, ())]


class TestFaultPlanDSL:
    def test_fluent_chain_records_events_in_order(self):
        plan = (
            FaultPlan()
            .fail_vertex(3)
            .fail_edge(0, 1)
            .propagate(2)
            .send(0, 8)
            .recover_edge(0, 1)
            .recover_vertex(3)
        )
        assert [e.kind for e in plan] == [
            "fail_vertex", "fail_edge", "propagate", "send",
            "recover_edge", "recover_vertex",
        ]
        assert plan.events[3].s == 0 and plan.events[3].t == 8
        assert len(plan) == 6

    def test_partition_normalizes_edge_orientation(self):
        plan = FaultPlan().partition([(5, 2), (1, 3)])
        assert plan.events[0].edges == ((2, 5), (1, 3))

    def test_unknown_kind_rejected(self):
        with pytest.raises(QueryError):
            ChaosEvent(kind="explode")

    def test_missing_payload_rejected(self):
        with pytest.raises(QueryError):
            ChaosEvent(kind="send", s=0)
        with pytest.raises(QueryError):
            ChaosEvent(kind="fail_vertex")
        with pytest.raises(QueryError):
            ChaosEvent(kind="partition")

    def test_drop_probability_validated(self):
        with pytest.raises(QueryError):
            FaultPlan(drop_probability=1.5)

    def test_with_loss_copies_schedule(self):
        plan = FaultPlan().fail_vertex(1)
        lossy = plan.with_loss(0.5)
        assert lossy.drop_probability == 0.5
        assert lossy.events == plan.events
        assert plan.drop_probability == 0.0

    def test_random_plan_deterministic(self):
        g = grid_graph(4, 4)
        a = random_churn_plan(g, num_events=50, seed=9)
        b = random_churn_plan(g, num_events=50, seed=9)
        c = random_churn_plan(g, num_events=50, seed=10)
        assert a.events == b.events and a.seed == b.seed
        assert a.events != c.events

    def test_random_plan_events_are_valid(self):
        g = grid_graph(5, 5)
        plan = random_churn_plan(g, num_events=120, seed=3)
        failed_v, failed_e = set(), set()
        for event in plan:
            if event.kind == "fail_vertex":
                assert event.vertex not in failed_v
                failed_v.add(event.vertex)
            elif event.kind == "recover_vertex":
                assert event.vertex in failed_v
                failed_v.discard(event.vertex)
            elif event.kind == "fail_edge":
                assert event.edge not in failed_e
                failed_e.add(event.edge)
            elif event.kind == "recover_edge":
                assert event.edge in failed_e
                failed_e.discard(event.edge)
            elif event.kind == "partition":
                assert not set(event.edges) & failed_e
                failed_e.update(event.edges)
            elif event.kind == "heal_partition":
                assert set(event.edges) <= failed_e
                failed_e.difference_update(event.edges)
            elif event.kind == "send":
                assert event.s not in failed_v
                assert event.t not in failed_v

    def test_tiny_graph_rejected(self):
        with pytest.raises(QueryError):
            random_churn_plan(path_graph(3))


class TestChaosRunner:
    def test_scripted_reroute_around_known_failure(self):
        plan = (
            FaultPlan(name="reroute")
            .fail_vertex(4)
            .propagate(16)
            .send(0, 8)
        )
        report = run_plan(cycle_graph(16), plan)
        assert report.ok, report.violations
        assert report.packets_delivered == 1
        assert report.stretch_samples == 1  # flood saturated -> aware send

    def test_scripted_cut_is_detected_not_crossed(self):
        plan = FaultPlan(name="cut").fail_vertex(5).send(0, 9)
        report = run_plan(path_graph(10), plan)
        assert report.ok, report.violations
        assert report.packets_undeliverable == 1

    def test_send_to_failed_endpoint_must_be_rejected(self):
        plan = FaultPlan(name="bad endpoint").fail_vertex(4).send(0, 4)
        report = run_plan(path_graph(6), plan)
        assert report.ok, report.violations
        assert report.packets_sent == 0  # rejected loudly, never routed

    def test_recovery_and_partition_window_roundtrip(self):
        g = grid_graph(4, 4)
        cut = [(1, 5), (2, 6), (0, 4), (3, 7)]  # row 0 vs rest
        plan = (
            FaultPlan(name="partition window")
            .partition(cut)
            .propagate(8)
            .send(0, 15)
            .heal_partition(cut)
            .propagate(8)
            .send(0, 15)
        )
        report = run_plan(g, plan)
        assert report.ok, report.violations
        assert report.packets_undeliverable == 1
        assert report.packets_delivered == 1

    def test_misinformation_is_flagged(self):
        g = grid_graph(4, 4)
        runner = ChaosRunner(g, FaultPlan())
        runner.simulator.view(3).vertices.add(7)  # believe a healthy router dead
        runner._check_consistency(0, ChaosEvent(kind="propagate"))
        assert any("nonexistent" in v for v in runner._report.violations)

    def test_truth_divergence_is_flagged(self):
        g = grid_graph(4, 4)
        runner = ChaosRunner(g, FaultPlan())
        runner.simulator.fail_vertex(5)  # behind the runner's back
        runner._check_consistency(0, ChaosEvent(kind="propagate"))
        assert any("diverged" in v for v in runner._report.violations)

    def test_smoke_random_schedules(self):
        for i, graph in enumerate([grid_graph(5, 5), cycle_graph(20)]):
            plan = random_churn_plan(
                graph, num_events=40, seed=21 + i,
                drop_probability=0.2 * i,
                name=f"smoke {i}",
            )
            report = run_plan(graph, plan, probe_on_failure=i == 0)
            assert report.ok, report.violations
            assert report.packets_sent > 0


@pytest.mark.chaos
class TestChaosAcceptance:
    def test_standard_suite_runs_clean(self):
        reports = standard_suite(num_schedules=20, num_events=100, seed=0)
        assert len(reports) == 20
        violations = [v for r in reports for v in r.violations]
        assert not violations, violations[:10]
        assert all(r.events_applied >= 100 for r in reports)
        assert sum(r.packets_sent for r in reports) > 200
        assert sum(r.stretch_samples for r in reports) > 0


class TestCorruption:
    def test_mutate_deterministic(self, db_blob):
        _, blob = db_blob
        a = mutate(blob, rng=5)
        b = mutate(blob, rng=5)
        assert a == b

    @pytest.mark.parametrize("kind", MUTATION_KINDS)
    def test_every_kind_changes_the_blob(self, db_blob, kind):
        _, blob = db_blob
        for seed in range(10):
            damaged, mutation = mutate(blob, rng=seed, kind=kind)
            assert damaged != blob
            assert mutation.kind == kind

    def test_unknown_kind_rejected(self, db_blob):
        _, blob = db_blob
        with pytest.raises(QueryError):
            mutate(blob, kind="cosmic_ray")

    @pytest.mark.parametrize("kind", MUTATION_KINDS)
    def test_strict_load_rejects_all_kinds(self, db_blob, kind):
        _, blob = db_blob
        for seed in range(10):
            damaged, _ = mutate(blob, rng=seed, kind=kind)
            with pytest.raises(EncodingError):
                LabelDatabase.load(io.BytesIO(damaged), strict=True)

    def test_fuzz_smoke(self, db_blob):
        _, blob = db_blob
        report = fuzz_database(blob, PROBES, trials=150, seed=1)
        assert report.ok, report.silent_wrong[:5]
        assert report.trials == 150
        assert report.rejected_at_load == 150  # v2 catches every mutation

    def test_fuzz_quarantine_path_exercised(self, db_blob):
        _, blob = db_blob
        report = fuzz_database(blob, PROBES, trials=150, seed=1)
        # some mutations must have degraded gracefully and then answered
        # or refused per-label — never silently wrong
        assert report.quarantined_loads > 0
        assert report.exact_answers > 0
        assert report.rejected_at_query > 0


@pytest.mark.chaos
class TestCorruptionAcceptance:
    def test_thousand_seeded_mutations_never_silently_wrong(self, db_blob):
        _, blob = db_blob
        report = fuzz_database(blob, PROBES, trials=1000, seed=0)
        assert report.trials == 1000
        assert report.ok, report.silent_wrong[:10]


class TestFaultPlanJson:
    """The canonical schema-versioned plan document round-trip."""

    def rich_plan(self) -> FaultPlan:
        return (
            FaultPlan(name="rich", seed=11, drop_probability=0.25)
            .fail_vertex(3)
            .fail_edge(0, 1)
            .propagate(2)
            .send(0, 5)
            .partition([(2, 3), (4, 3)])
            .heal_partition([(2, 3), (3, 4)])
            .shard_down(0)
            .shard_slow(1, 12.5)
            .shard_flaky(2, 0.5)
            .shard_recover(0)
            .rollout_begin(4, 5)
            .rollout_commit()
            .query(0, 8, faults=(3,), fault_edges=((1, 2),))
            .advance(50.0)
        )

    def test_round_trip_is_byte_identical(self):
        plan = self.rich_plan()
        text = plan.to_json()
        clone = FaultPlan.from_json(text)
        assert clone.to_json() == text
        assert clone.name == "rich"
        assert clone.seed == 11
        assert clone.drop_probability == 0.25
        assert [e.kind for e in clone.events] \
            == [e.kind for e in plan.events]

    def test_document_is_canonical(self):
        import json

        payload = json.loads(self.rich_plan().to_json())
        assert payload["schema"] == "repro/fault-plan@1"
        # keys are sorted at every level
        assert list(payload) == sorted(payload)
        for row in payload["events"]:
            assert list(row) == sorted(row)

    def test_default_fields_are_omitted(self):
        import json

        payload = json.loads(FaultPlan().propagate().to_json())
        (row,) = payload["events"]
        assert row == {"kind": "propagate"}  # rounds=1 omitted

    def test_invalid_json_rejected(self):
        with pytest.raises(QueryError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_non_object_document_rejected(self):
        with pytest.raises(QueryError, match="must be a JSON object"):
            FaultPlan.from_json("[1, 2]")

    def test_unknown_schema_rejected(self):
        with pytest.raises(QueryError, match="unknown plan schema"):
            FaultPlan.from_json(
                '{"schema": "repro/fault-plan@9", "events": []}'
            )

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(QueryError, match="unknown plan field 'extra'"):
            FaultPlan.from_json(
                '{"schema": "repro/fault-plan@1", "extra": 1, "events": []}'
            )

    def test_unknown_event_kind_names_index_and_known_kinds(self):
        doc = (
            '{"schema": "repro/fault-plan@1", '
            '"events": [{"kind": "fail_vertex", "vertex": 0}, '
            '{"kind": "explode"}]}'
        )
        with pytest.raises(QueryError) as err:
            FaultPlan.from_json(doc)
        message = str(err.value)
        assert "event 1" in message
        assert "explode" in message
        assert "fail_vertex" in message  # known kinds listed

    def test_unknown_event_field_rejected(self):
        doc = (
            '{"schema": "repro/fault-plan@1", '
            '"events": [{"kind": "send", "s": 0, "t": 1, "colour": 3}]}'
        )
        with pytest.raises(QueryError, match="event 0: unknown field"):
            FaultPlan.from_json(doc)

    def test_malformed_edge_rejected(self):
        doc = (
            '{"schema": "repro/fault-plan@1", '
            '"events": [{"kind": "fail_edge", "edge": [1]}]}'
        )
        with pytest.raises(QueryError, match="must be a \\[a, b\\] pair"):
            FaultPlan.from_json(doc)
