"""Acceptance battery for the overload-resilient gateway.

The headline guarantees under 4x offered overload with a concurrent
shard outage and a fault burst:

* every non-exact outcome carries an explicit ``DegradationReason`` —
  no silent timeouts, no silent wrong answers (exact answers are
  re-checked against BFS ground truth with the faults applied);
* per-tenant goodput stays within the fairness bound among genuinely
  backlogged tenants;
* the whole run is bit-identical for a fixed seed.

A moderate smoke run executes by default; the full-length battery and
the expensive double-run identity checks carry the ``chaos`` marker.
"""

import json

import pytest

from repro.gateway import standard_traffic_battery
from repro.obs.export import render_prometheus
from repro.obs.registry import Registry
from repro.service import SHED_REASONS


@pytest.fixture(scope="module")
def smoke_report():
    # 500 virtual ms reaches the outage window (400-700 ms) and the
    # fault burst (450-700 ms), so degradations and all shed paths
    # are exercised, at roughly half the full battery's wall cost
    return standard_traffic_battery(seed=0, duration_ms=500.0)


class TestSmokeRun:
    def test_battery_is_clean(self, smoke_report):
        assert smoke_report.ok, smoke_report.violations[:10]

    def test_real_overload_was_applied(self, smoke_report):
        # the run must actually be an overload test, not a breeze
        assert smoke_report.submitted > 1000
        assert smoke_report.shed > 0
        assert 0.0 < smoke_report.shed_rate < 1.0

    def test_all_shed_reasons_occur(self, smoke_report):
        expected = {str(reason) for reason in SHED_REASONS}
        assert set(smoke_report.shed_by_reason) == expected
        assert all(n > 0 for n in smoke_report.shed_by_reason.values())

    def test_every_served_outcome_was_judged(self, smoke_report):
        # one structural judgment per outcome (sheds included) plus
        # one ground-truth check per served (non-shed) request
        served = smoke_report.exact + smoke_report.degraded
        assert served > 0
        assert (
            smoke_report.checks_performed
            == smoke_report.submitted + served
        )

    def test_shed_accounting_is_complete(self, smoke_report):
        assert (
            smoke_report.exact + smoke_report.degraded + smoke_report.shed
            == smoke_report.submitted
        )
        assert (
            sum(smoke_report.shed_by_reason.values()) == smoke_report.shed
        )

    def test_outage_produced_explicit_degradations(self, smoke_report):
        # shard 0 is down 400-700 ms with no replica: some answers
        # must degrade, and each carries a reason (else .ok would be
        # False via the per-outcome judge)
        assert smoke_report.degraded > 0

    def test_fairness_held_among_backlogged_tenants(self, smoke_report):
        assert smoke_report.fairness_ratio <= 3.0

    def test_stretch_never_exceeded_the_scheme_bound(self, smoke_report):
        assert smoke_report.worst_stretch >= 1.0
        assert smoke_report.ok  # stretch violations would land here

    def test_report_roundtrips_through_json(self, smoke_report):
        blob = json.dumps(smoke_report.to_dict(), sort_keys=True)
        assert json.loads(blob)["ok"] is True
        assert "seed=0" in smoke_report.fingerprint
        assert "OK" in smoke_report.summary()


class TestDeterminism:
    def test_same_seed_same_fingerprint(self):
        first = standard_traffic_battery(seed=3, duration_ms=250.0)
        second = standard_traffic_battery(seed=3, duration_ms=250.0)
        assert first.ok, first.violations[:10]
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )
        assert first.fingerprint == second.fingerprint

    def test_different_seed_different_stream(self):
        first = standard_traffic_battery(seed=3, duration_ms=250.0)
        other = standard_traffic_battery(seed=4, duration_ms=250.0)
        assert other.ok, other.violations[:10]
        assert first.fingerprint != other.fingerprint


class TestExport:
    def test_slo_gauges_land_in_prometheus_text(self):
        obs = Registry()
        report = standard_traffic_battery(
            seed=1, duration_ms=250.0, obs=obs
        )
        text = render_prometheus(obs)
        assert "repro_traffic_p99_total_ms" in text
        assert "repro_traffic_shed_rate" in text
        assert "repro_traffic_goodput_fraction" in text
        assert "repro_traffic_violations_total" in text
        # gateway-level families ride along on the same registry
        assert "repro_gateway_requests_total" in text
        assert report.ok, report.violations[:10]


@pytest.mark.chaos
class TestFullBattery:
    def test_full_second_at_4x_overload_is_clean(self):
        report = standard_traffic_battery(seed=0, duration_ms=1000.0)
        assert report.ok, report.violations[:10]
        assert report.submitted > 3000
        expected = {str(reason) for reason in SHED_REASONS}
        assert set(report.shed_by_reason) == expected
        assert report.fairness_ratio <= 3.0

    def test_full_run_is_bit_identical(self):
        first = standard_traffic_battery(seed=0, duration_ms=1000.0)
        second = standard_traffic_battery(seed=0, duration_ms=1000.0)
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )

    def test_coalescing_and_cache_change_work_not_answers(self):
        baseline = standard_traffic_battery(seed=2, duration_ms=400.0)
        stripped = standard_traffic_battery(
            seed=2, duration_ms=400.0, use_cache=False, coalescing=False
        )
        assert baseline.ok, baseline.violations[:10]
        assert stripped.ok, stripped.violations[:10]
        # same offered stream either way; correctness never depends
        # on the optimisations being on
        assert baseline.submitted == stripped.submitted
