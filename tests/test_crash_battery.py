"""The exhaustive kill-point crash battery and its CLI.

The smoke tests run a reduced battery (small graph, one churn round);
the full acceptance battery — every kill-point of the default workload
under every crash mode, ≥ 200 crashes — carries the ``chaos`` marker.
"""

import pytest

from repro.cli import main
from repro.durability import CRASH_MODES, build_workload, exhaustive_crash_battery
from repro.durability.battery import prefix_states
from repro.graphs.generators import grid_graph, path_graph


class TestWorkload:
    def test_deterministic_under_seed(self):
        vertices = list(range(9))
        assert build_workload(vertices, seed=4) == build_workload(vertices, seed=4)
        assert build_workload(vertices, seed=4) != build_workload(vertices, seed=5)

    def test_prefix_states_track_ops(self):
        payloads = {0: b"a", 1: b"b", 2: b"c"}
        ops = build_workload([0, 1, 2], seed=0, churn_rounds=1)
        states = prefix_states(ops, payloads)
        assert states[0] == {}
        assert len(states) == len(ops) + 1
        # after the bulk load every vertex is present
        assert states[3] == payloads
        # churn deletes then re-puts, so the final state is full again
        assert states[-1] == payloads


class TestBatterySmoke:
    def test_small_battery_passes(self):
        report = exhaustive_crash_battery(
            path_graph(6), epsilon=1.0, seed=1, churn_rounds=1
        )
        assert report.passed, report.violations[:5]
        assert report.crashes_fired == report.kill_points
        assert report.kill_points == report.fs_ops * len(CRASH_MODES)
        # every mode actually exercised, and recovery had real work to do
        assert all(report.mode_counts[m] > 0 for m in CRASH_MODES)
        assert report.torn_tails_truncated > 0
        assert report.tmp_files_swept > 0
        assert report.probe_queries > 0

    def test_battery_deterministic(self):
        a = exhaustive_crash_battery(path_graph(5), seed=2, churn_rounds=1)
        b = exhaustive_crash_battery(path_graph(5), seed=2, churn_rounds=1)
        assert a == b


@pytest.mark.chaos
class TestBatteryFull:
    def test_default_battery_meets_acceptance(self):
        """≥ 200 kill-points across all three modes, zero violations."""
        report = exhaustive_crash_battery(grid_graph(4, 4), epsilon=1.0, seed=0)
        assert report.kill_points >= 200
        assert report.crashes_fired == report.kill_points
        assert report.passed, report.violations[:10]

    def test_battery_passes_across_seeds(self):
        for seed in range(3):
            report = exhaustive_crash_battery(
                grid_graph(3, 3), epsilon=1.0, seed=seed, churn_rounds=2
            )
            assert report.passed, (seed, report.violations[:5])


class TestCrashBatteryCli:
    def test_cli_smoke(self, capsys):
        code = main([
            "crash-battery", "grid:3x3", "--seed", "3", "--churn-rounds", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "durability:   OK" in out
        assert "kill-points:" in out

    def test_cli_reports_modes(self, capsys):
        code = main([
            "crash-battery", "path:5", "--churn-rounds", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        for mode in CRASH_MODES:
            assert mode in out
